// Figures 6–7 + Observation 3 (Section 6): "Choosing the right penalty
// function makes a difference." Two progressive runs over the same batch —
// one ordered by plain-SSE importance, one by a cursored SSE that weighs 20
// neighboring high-priority ranges 10× more — measured under BOTH
// penalties:
//   Figure 6: normalized SSE           (the SSE-optimized run wins)
//   Figure 7: normalized cursored SSE  (the cursored-optimized run wins)

#include "bench_common.h"
#include "util/table.h"
#include "core/progressive.h"
#include "core/trace.h"
#include "penalty/sse.h"

namespace wavebatch::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              "bench_fig6_7_penalties: reproduce Figures 6 and 7\n"
              "  --cursor_size=20  number of high-priority ranges\n"
              "  --cursor_weight=10\n" +
                  kCommonFlagsHelp);
  TemperatureDatasetOptions options = DataOptionsFromFlags(flags);
  const std::vector<size_t> parts = PartsFromFlags(flags);
  size_t num_ranges = 1;
  for (size_t p : parts) num_ranges *= p;
  const size_t cursor_size =
      static_cast<size_t>(flags.Int("cursor_size", 20));
  const double cursor_weight = flags.Double("cursor_weight", 10.0);

  Stopwatch total;
  std::cout << "building experiment (domain "
            << TemperatureSchema(options).ToString() << ", "
            << options.num_records << " records, " << num_ranges
            << " ranges)..." << std::endl;
  Experiment exp(options, parts, 1234, WaveletKind::kDb4);
  const size_t s = exp.workload.batch.size();

  // The paper's cursor: a set of neighboring ranges "currently on screen".
  // Grid cells are row-major, so a run of consecutive indices in one grid
  // row is a contiguous block of the partition.
  std::vector<size_t> cursor;
  for (size_t i = 0; i < std::min(cursor_size, s); ++i) {
    cursor.push_back(s / 2 + i);  // a block in the middle of the domain
  }
  SsePenalty sse;
  WeightedSsePenalty cursored = CursoredSsePenalty(s, cursor, cursor_weight);

  double sse_norm = 0.0, cursored_norm = 0.0;
  {
    std::vector<double> zero_err = exp.exact;  // error of the zero estimate
    sse_norm = sse.Apply(zero_err);
    cursored_norm = cursored.Apply(zero_err);
  }

  auto run = [&](const PenaltyFunction& optimize_for) {
    ProgressiveEvaluator ev(&exp.list, &optimize_for, exp.store.get());
    return ProgressionTrace::Run(
        ev, exp.exact,
        {{"normalized_sse", &sse, sse_norm},
         {"normalized_cursored_sse", &cursored, cursored_norm}},
        /*dense_until=*/32, /*growth=*/1.4);
  };
  std::cout << "running progression optimized for SSE..." << std::endl;
  ProgressionTrace by_sse = run(sse);
  std::cout << "running progression optimized for cursored SSE..."
            << std::endl;
  ProgressionTrace by_cursored = run(cursored);

  std::cout << "\nFigure 6 (normalized SSE) and Figure 7 (normalized "
               "cursored SSE), both progressions:\n";
  Table table({"retrieved", "nsse[opt=sse]", "nsse[opt=cursored]",
               "ncursored[opt=sse]", "ncursored[opt=cursored]"});
  // The two traces share checkpoint positions (same trace parameters and
  // master-list size).
  const size_t rows =
      std::min(by_sse.points().size(), by_cursored.points().size());
  for (size_t i = 0; i < rows; ++i) {
    const auto& a = by_sse.points()[i];
    const auto& b = by_cursored.points()[i];
    table.AddRow({std::to_string(a.retrieved),
                  FormatDouble(a.penalties[0]),
                  FormatDouble(b.penalties[0]),
                  FormatDouble(a.penalties[1]),
                  FormatDouble(b.penalties[1])});
  }
  table.Print(std::cout);
  std::cout << "expected shape (paper Figs 6-7): column 2 < column 3 "
               "(SSE-optimized wins on SSE), column 5 < column 4 "
               "(cursored-optimized wins on cursored SSE).\n";
  std::cout << "elapsed: " << FormatDouble(total.ElapsedSeconds(), 3)
            << "s\n";

  const std::string csv = flags.Str("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) return 1;
  if (!WriteMetricsOut(flags)) return 1;
  return 0;
}

}  // namespace
}  // namespace wavebatch::bench

int main(int argc, char** argv) { return wavebatch::bench::Main(argc, argv); }
