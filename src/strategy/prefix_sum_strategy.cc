#include "strategy/prefix_sum_strategy.h"

#include <algorithm>
#include <set>

#include "storage/dense_store.h"
#include "util/check.h"

namespace wavebatch {

PrefixSumStrategy::PrefixSumStrategy(
    Schema schema, std::vector<std::vector<uint32_t>> monomials)
    : LinearStrategy(std::move(schema)) {
  std::set<std::vector<uint32_t>> seen;
  for (auto& m : monomials) {
    WB_CHECK_EQ(m.size(), schema_.num_dims());
    if (seen.insert(m).second) monomials_.push_back(std::move(m));
  }
  WB_CHECK(!monomials_.empty()) << "prefix-sum view needs >= 1 monomial";
  // Slot bits must fit above the cell bits.
  WB_CHECK_LT(monomials_.size(),
              uint64_t{1} << (64 - schema_.total_bits()));
}

std::vector<std::vector<uint32_t>> PrefixSumStrategy::CollectMonomials(
    const QueryBatch& batch) {
  std::set<std::vector<uint32_t>> seen;
  for (const RangeSumQuery& q : batch.queries()) {
    for (const Monomial& m : q.poly().terms()) seen.insert(m.exponents);
  }
  return {seen.begin(), seen.end()};
}

Result<size_t> PrefixSumStrategy::MonomialSlot(
    const std::vector<uint32_t>& exponents) const {
  for (size_t t = 0; t < monomials_.size(); ++t) {
    if (monomials_[t] == exponents) return t;
  }
  return Status::NotFound(
      "prefix-sum view does not support this monomial; rebuild with it");
}

double PrefixSumStrategy::EvalMonomial(
    const std::vector<uint32_t>& exponents, const Tuple& t) {
  double v = 1.0;
  for (size_t i = 0; i < exponents.size(); ++i) {
    for (uint32_t e = 0; e < exponents[i]; ++e) {
      v *= static_cast<double>(t[i]);
    }
  }
  return v;
}

Result<SparseVec> PrefixSumStrategy::TransformQuery(
    const RangeSumQuery& query) const {
  const size_t d = schema_.num_dims();
  SparseAccumulator acc;
  for (const Monomial& term : query.poly().terms()) {
    Result<size_t> slot = MonomialSlot(term.exponents);
    if (!slot.ok()) return slot.status();
    const uint64_t slot_base = static_cast<uint64_t>(*slot)
                               << schema_.total_bits();
    // Inclusion-exclusion over the 2^d corners of R.
    for (uint64_t mask = 0; mask < (uint64_t{1} << d); ++mask) {
      bool vanishes = false;
      int lo_corners = 0;
      Tuple corner(d);
      for (size_t i = 0; i < d; ++i) {
        const Interval& iv = query.range().interval(i);
        if (mask & (uint64_t{1} << i)) {
          // Lower corner: P at lo-1, which is identically zero if lo == 0.
          if (iv.lo == 0) {
            vanishes = true;
            break;
          }
          corner[i] = iv.lo - 1;
          ++lo_corners;
        } else {
          corner[i] = iv.hi;
        }
      }
      if (vanishes) continue;
      const double sign = (lo_corners % 2 == 0) ? 1.0 : -1.0;
      acc.Add(slot_base | schema_.Pack(corner), sign * term.coeff);
    }
  }
  return acc.ToVec();
}

std::unique_ptr<CoefficientStore> PrefixSumStrategy::BuildStore(
    const DenseCube& delta) const {
  WB_CHECK(delta.schema() == schema_);
  const uint64_t cells = schema_.cell_count();
  std::vector<double> values(cells * monomials_.size(), 0.0);
  for (size_t t = 0; t < monomials_.size(); ++t) {
    double* view = &values[t * cells];
    // Weighted copy: m_t(x) * Δ[x].
    for (uint64_t cell = 0; cell < cells; ++cell) {
      const double mass = delta[cell];
      if (mass != 0.0) {
        view[cell] = EvalMonomial(monomials_[t], schema_.Unpack(cell)) * mass;
      }
    }
    // Running prefix sums along each dimension in turn.
    for (size_t dim = 0; dim < schema_.num_dims(); ++dim) {
      const uint64_t n = schema_.dim(dim).size;
      uint64_t pre = 1, post = 1;
      for (size_t i = 0; i < dim; ++i) pre *= schema_.dim(i).size;
      for (size_t i = dim + 1; i < schema_.num_dims(); ++i) {
        post *= schema_.dim(i).size;
      }
      for (uint64_t p = 0; p < pre; ++p) {
        for (uint64_t q = 0; q < post; ++q) {
          const uint64_t base = p * n * post + q;
          for (uint64_t j = 1; j < n; ++j) {
            view[base + j * post] += view[base + (j - 1) * post];
          }
        }
      }
    }
  }
  // Note: keys are slot*cells' packed layout, i.e. slot << total_bits is
  // exactly slot * cells because cells == 1 << total_bits.
  return std::make_unique<DenseStore>(std::move(values));
}

Result<SparseVec> PrefixSumStrategy::TransformUpdate(const Tuple& tuple,
                                                     double count) const {
  if (!schema_.Contains(tuple)) {
    return Status::OutOfRange("tuple outside schema domain");
  }
  const size_t d = schema_.num_dims();
  std::vector<SparseEntry> entries;
  for (size_t t = 0; t < monomials_.size(); ++t) {
    const double delta = EvalMonomial(monomials_[t], tuple) * count;
    if (delta == 0.0) continue;
    const uint64_t slot_base = static_cast<uint64_t>(t)
                               << schema_.total_bits();
    // All cells y >= tuple componentwise receive the update.
    Tuple y = tuple;
    for (;;) {
      entries.push_back({slot_base | schema_.Pack(y), delta});
      size_t dim = d;
      bool done = true;
      while (dim-- > 0) {
        if (++y[dim] < schema_.dim(dim).size) {
          done = false;
          break;
        }
        y[dim] = tuple[dim];
      }
      if (done) break;
    }
  }
  return SparseVec::FromUnsorted(std::move(entries));
}

std::unique_ptr<CoefficientStore> PrefixSumStrategy::MakeEmptyStore() const {
  return std::make_unique<DenseStore>(schema_.cell_count() *
                                      monomials_.size());
}

}  // namespace wavebatch
