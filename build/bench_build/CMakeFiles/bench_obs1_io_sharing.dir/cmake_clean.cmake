file(REMOVE_RECURSE
  "../bench/bench_obs1_io_sharing"
  "../bench/bench_obs1_io_sharing.pdb"
  "CMakeFiles/bench_obs1_io_sharing.dir/bench_obs1_io_sharing.cc.o"
  "CMakeFiles/bench_obs1_io_sharing.dir/bench_obs1_io_sharing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs1_io_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
