#ifndef WAVEBATCH_TELEMETRY_SPAN_H_
#define WAVEBATCH_TELEMETRY_SPAN_H_

#include <chrono>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace wavebatch::telemetry {

/// RAII evaluation span: times the enclosing scope on the wall clock and
/// records it into the process registry's span buffer on destruction.
/// Every span carries an explicit parent: the thread's innermost live span
/// at construction — which, right after a ScopedTraceContext install, is
/// the *originating* thread's span (the cross-thread link ThreadPool
/// captures at Submit). Spans also inherit the installed context's
/// trace/request ids, so each one is attributable to the request it served.
///
/// The canonical instrumentation points use fixed names:
///   plan_build         — EvalPlan::Build (rewrite + importances + orders)
///   plan_cache_lookup  — PlanCache::GetOrBuild (contains plan_build on miss)
///   session_step       — EvalSession::StepBatch / StepBlock
///   store_fetch_batch  — CoefficientStore::FetchBatch (emitted by the
///                        wrapper together with the latency histogram)
///   shard_subbatch     — ShardedStore per-shard scatter-gather leg
///   request_quantum    — QueryService scheduler quantum (prefetch + step)
///
/// When the registry is disabled the constructor reads one relaxed flag and
/// the span never touches a clock, an id counter, or thread state.
class ScopedSpan {
 public:
  /// `name` must have static storage duration (pass a string literal).
  explicit ScopedSpan(const char* name) {
    if (Enabled()) {
      name_ = name;
      span_id_ = NewSpanId();
      parent_span_id_ = internal::t_trace.current_span_id;
      internal::t_trace.current_span_id = span_id_;
      begin_ = std::chrono::steady_clock::now();
    }
  }

  /// Attaches one numeric attribute (`key` must have static storage
  /// duration). At most SpanEvent::kMaxAttrs stick; extras are dropped.
  /// No-op on a disabled span.
  void AddAttr(const char* key, double value) {
    if (name_ != nullptr && num_attrs_ < SpanEvent::kMaxAttrs) {
      attrs_[num_attrs_++] = SpanAttr{key, value};
    }
  }

  ~ScopedSpan() {
    if (name_ != nullptr) {
      internal::t_trace.current_span_id = parent_span_id_;
      MetricsRegistry::Default().RecordSpanWithIds(
          name_, begin_, std::chrono::steady_clock::now(), span_id_,
          parent_span_id_, attrs_, num_attrs_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  SpanAttr attrs_[SpanEvent::kMaxAttrs] = {};
  uint32_t num_attrs_ = 0;
  std::chrono::steady_clock::time_point begin_{};
};

}  // namespace wavebatch::telemetry

#endif  // WAVEBATCH_TELEMETRY_SPAN_H_
