// The telemetry subsystem: registry semantics (stable handles, label
// canonicalization, one type per name), hot-path exactness under concurrent
// writers, the Disable() null path, log-scale histogram bucketing, span
// recording with a bounded buffer, both exporters, and the Prometheus
// exposition validator (including negative cases and validation while other
// threads keep mutating). The engine/storage integration tests at the end
// check the canonical metric names actually flow when sessions run.

#include "telemetry/metrics.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "engine/plan_cache.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "storage/memory_store.h"
#include "strategy/wavelet_strategy.h"
#include "telemetry/export.h"
#include "telemetry/span.h"
#include "telemetry/timeline.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace wavebatch {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::Labels;
using telemetry::MetricsRegistry;

/// Every test starts from a zeroed registry; handles registered by other
/// tests (or library code) stay valid, only values reset.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Enable();
    MetricsRegistry::Default().ResetValues();
  }
};

// ---------------------------------------------------------------------------
// Registry semantics.

TEST_F(TelemetryTest, SameNameAndLabelsReturnsSameHandle) {
  auto& registry = MetricsRegistry::Default();
  Counter* a = registry.GetCounter("tm_test_counter", {{"k", "v"}});
  Counter* b = registry.GetCounter("tm_test_counter", {{"k", "v"}});
  EXPECT_EQ(a, b);
  Counter* other = registry.GetCounter("tm_test_counter", {{"k", "w"}});
  EXPECT_NE(a, other);
}

TEST_F(TelemetryTest, LabelOrderIsCanonicalized) {
  auto& registry = MetricsRegistry::Default();
  Counter* ab = registry.GetCounter("tm_test_canon", {{"a", "1"}, {"b", "2"}});
  Counter* ba = registry.GetCounter("tm_test_canon", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);
}

TEST_F(TelemetryTest, RemoveUnregistersOneSeries) {
  auto& registry = MetricsRegistry::Default();
  const size_t before = registry.NumMetrics();
  registry.GetGauge("tm_test_removable", {{"id", "1"}});
  registry.GetGauge("tm_test_removable", {{"id", "2"}});
  EXPECT_EQ(registry.NumMetrics(), before + 2);
  registry.Remove("tm_test_removable", {{"id", "1"}});
  EXPECT_EQ(registry.NumMetrics(), before + 1);
  registry.Remove("tm_test_removable", {{"id", "2"}});
  EXPECT_EQ(registry.NumMetrics(), before);
}

TEST_F(TelemetryTest, SnapshotIsSortedByFamily) {
  auto& registry = MetricsRegistry::Default();
  registry.GetCounter("tm_test_zz_family");
  registry.GetCounter("tm_test_aa_family");
  std::string prev;
  for (const auto& snap : registry.Snapshot()) {
    EXPECT_LE(prev, snap.name);
    prev = snap.name;
  }
}

// ---------------------------------------------------------------------------
// Hot-path exactness: relaxed atomics lose nothing.

TEST_F(TelemetryTest, ConcurrentCounterAddsAreExact) {
  Counter* counter =
      MetricsRegistry::Default().GetCounter("tm_test_concurrent_counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST_F(TelemetryTest, ConcurrentHistogramObservationsAreExact) {
  Histogram* hist =
      MetricsRegistry::Default().GetHistogram("tm_test_concurrent_hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist->Observe(static_cast<uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hist->Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += hist->BucketCount(i);
  }
  EXPECT_EQ(bucket_total, hist->Count());
}

TEST_F(TelemetryTest, GaugeAddIsExactUnderContention) {
  Gauge* gauge = MetricsRegistry::Default().GetGauge("tm_test_gauge_add");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge->Add(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(gauge->Value(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// The Disable() null path.

TEST_F(TelemetryTest, DisabledRegistryRecordsNothing) {
  auto& registry = MetricsRegistry::Default();
  Counter* counter = registry.GetCounter("tm_test_disabled_counter");
  Histogram* hist = registry.GetHistogram("tm_test_disabled_hist");
  Gauge* gauge = registry.GetGauge("tm_test_disabled_gauge");
  const size_t spans_before = registry.Spans().size();

  MetricsRegistry::Disable();
  counter->Add(5);
  hist->Observe(100);
  gauge->Set(3.0);
  {
    telemetry::ScopedSpan span("tm_test_disabled_span");
  }
  MetricsRegistry::Enable();

  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(hist->Count(), 0u);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(registry.Spans().size(), spans_before);
}

// ---------------------------------------------------------------------------
// Log-scale histogram bucketing.

TEST_F(TelemetryTest, HistogramBucketBoundaries) {
  // Bucket i holds v with 2^(i-1) < v <= 2^i; bucket 0 holds v <= 1.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1025), 11u);
  // Everything above the last finite bound (2^42) overflows to +Inf.
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 42),
            Histogram::kFiniteBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 42) + 1),
            Histogram::kFiniteBuckets);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kFiniteBuckets);
  // Upper bounds are the powers of two.
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024u);
}

TEST_F(TelemetryTest, HistogramSumAndCountTrackObservations) {
  Histogram* hist = MetricsRegistry::Default().GetHistogram("tm_test_sums");
  hist->Observe(3);
  hist->Observe(5);
  hist->Observe(100);
  EXPECT_EQ(hist->Count(), 3u);
  EXPECT_EQ(hist->Sum(), 108u);
  EXPECT_EQ(hist->BucketCount(2), 1u);  // 3
  EXPECT_EQ(hist->BucketCount(3), 1u);  // 5
  EXPECT_EQ(hist->BucketCount(7), 1u);  // 100 (64 < 100 <= 128)
}

// ---------------------------------------------------------------------------
// Spans.

TEST_F(TelemetryTest, ScopedSpanRecordsWallClockDuration) {
  auto& registry = MetricsRegistry::Default();
  const size_t before = registry.Spans().size();
  {
    telemetry::ScopedSpan span("tm_test_span");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::vector<telemetry::SpanEvent> spans = registry.Spans();
  ASSERT_EQ(spans.size(), before + 1);
  EXPECT_EQ(std::string_view(spans.back().name), "tm_test_span");
  EXPECT_GE(spans.back().dur_us, 2000.0);
}

TEST_F(TelemetryTest, NestedSpansAreContainedIntervals) {
  auto& registry = MetricsRegistry::Default();
  const size_t before = registry.Spans().size();
  {
    telemetry::ScopedSpan outer("tm_test_outer");
    {
      telemetry::ScopedSpan inner("tm_test_inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const std::vector<telemetry::SpanEvent> spans = registry.Spans();
  ASSERT_EQ(spans.size(), before + 2);
  // RAII order: inner destructs first.
  const telemetry::SpanEvent& inner = spans[before];
  const telemetry::SpanEvent& outer = spans[before + 1];
  EXPECT_EQ(std::string_view(inner.name), "tm_test_inner");
  EXPECT_EQ(std::string_view(outer.name), "tm_test_outer");
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-3);
}

TEST_F(TelemetryTest, SpanBufferIsBoundedAndCountsDrops) {
  auto& registry = MetricsRegistry::Default();
  registry.SetSpanCapacity(4);
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    registry.RecordSpan("tm_test_overflow", now, now);
  }
  EXPECT_EQ(registry.Spans().size(), 4u);
  EXPECT_EQ(registry.dropped_spans(), 6u);
  registry.SetSpanCapacity(size_t{1} << 18);
  registry.ResetValues();
}

TEST_F(TelemetryTest, DroppedSpansExportAsPrometheusCounter) {
  auto& registry = MetricsRegistry::Default();
  registry.SetSpanCapacity(2);
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    registry.RecordSpan("tm_test_drop_export", now, now);
  }
  EXPECT_EQ(registry.dropped_spans(), 3u);
  // The drop count is a first-class Prometheus series, not just an
  // accessor — a scraper can alert on span loss without process access.
  const std::string text = telemetry::ExportPrometheus(registry);
  std::string error;
  EXPECT_TRUE(telemetry::ValidatePrometheus(text, &error)) << error;
  EXPECT_NE(text.find("wavebatch_telemetry_dropped_spans_total 3"),
            std::string::npos);
  registry.SetSpanCapacity(size_t{1} << 18);
  registry.ResetValues();
}

TEST_F(TelemetryTest, SpanAttrsAreRecordedAndCapped) {
  auto& registry = MetricsRegistry::Default();
  const size_t before = registry.Spans().size();
  {
    telemetry::ScopedSpan span("tm_test_attr_span");
    span.AddAttr("keys", 7);
    span.AddAttr("shard", 2);
    span.AddAttr("epoch", 3);
    span.AddAttr("bound", 0.5);
    span.AddAttr("overflowing", 99);  // beyond kMaxAttrs: dropped
  }
  const std::vector<telemetry::SpanEvent> spans = registry.Spans();
  ASSERT_EQ(spans.size(), before + 1);
  const telemetry::SpanEvent& span = spans.back();
  ASSERT_EQ(span.num_attrs, telemetry::SpanEvent::kMaxAttrs);
  EXPECT_EQ(std::string_view(span.attrs[0].key), "keys");
  EXPECT_DOUBLE_EQ(span.attrs[0].value, 7.0);
  EXPECT_EQ(std::string_view(span.attrs[3].key), "bound");
  EXPECT_DOUBLE_EQ(span.attrs[3].value, 0.5);

  // Attrs surface in the Chrome export's args alongside the ids.
  const std::string json = telemetry::ExportChromeTrace(registry);
  EXPECT_NE(json.find("\"keys\":7"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":2"), std::string::npos);
  EXPECT_EQ(json.find("overflowing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Convergence timelines.

TEST_F(TelemetryTest, ConvergenceTimelineDecimatesDeterministically) {
  telemetry::ConvergenceTimeline timeline(4);
  for (uint64_t i = 0; i < 20; ++i) {
    telemetry::TimelinePoint point;
    point.steps = i;
    timeline.Sample(point);
  }
  // Stride-doubling over 20 offered samples at capacity 4: the survivors
  // are the multiples of the final stride — a function of the offered count
  // alone, never of timing.
  EXPECT_EQ(timeline.offered(), 20u);
  EXPECT_EQ(timeline.stride(), 8u);
  ASSERT_EQ(timeline.points().size(), 3u);
  EXPECT_EQ(timeline.points()[0].steps, 0u);
  EXPECT_EQ(timeline.points()[1].steps, 8u);
  EXPECT_EQ(timeline.points()[2].steps, 16u);

  // The completion point lands regardless of where the stride is.
  telemetry::TimelinePoint final_point;
  final_point.steps = 99;
  timeline.ForceSample(final_point);
  EXPECT_EQ(timeline.points().back().steps, 99u);

  // TakePoints drains the buffer for the completed-request record.
  const std::vector<telemetry::TimelinePoint> taken = timeline.TakePoints();
  EXPECT_EQ(taken.size(), 4u);
  EXPECT_TRUE(timeline.empty());
}

// ---------------------------------------------------------------------------
// Prometheus exporter + validator.

TEST_F(TelemetryTest, ExportPrometheusValidates) {
  auto& registry = MetricsRegistry::Default();
  registry.GetCounter("tm_test_export_counter", {{"k", "v"}}, "A counter.")
      ->Add(7);
  registry.GetGauge("tm_test_export_gauge", {}, "A gauge.")->Set(-1.5);
  Histogram* hist =
      registry.GetHistogram("tm_test_export_hist", {{"h", "x"}}, "A hist.");
  hist->Observe(1);
  hist->Observe(500);
  hist->Observe(uint64_t{1} << 60);  // overflow bucket

  const std::string text = telemetry::ExportPrometheus(registry);
  std::string error;
  EXPECT_TRUE(telemetry::ValidatePrometheus(text, &error)) << error;
  EXPECT_NE(text.find("tm_test_export_counter{k=\"v\"} 7"), std::string::npos);
  EXPECT_NE(text.find("tm_test_export_gauge -1.5"), std::string::npos);
  EXPECT_NE(text.find("tm_test_export_hist_bucket{h=\"x\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("tm_test_export_hist_count{h=\"x\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tm_test_export_hist histogram"),
            std::string::npos);
}

TEST_F(TelemetryTest, ExportEscapesLabelValues) {
  auto& registry = MetricsRegistry::Default();
  registry.GetCounter("tm_test_escape", {{"path", "a\\b\"c\nd"}})->Add(1);
  const std::string text = telemetry::ExportPrometheus(registry);
  std::string error;
  EXPECT_TRUE(telemetry::ValidatePrometheus(text, &error)) << error;
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);
  registry.Remove("tm_test_escape", {{"path", "a\\b\"c\nd"}});
}

TEST_F(TelemetryTest, HistogramBucketsAreCumulative) {
  auto& registry = MetricsRegistry::Default();
  Histogram* hist = registry.GetHistogram("tm_test_cumulative");
  hist->Observe(1);  // bucket 0
  hist->Observe(2);  // bucket 1
  hist->Observe(2);  // bucket 1
  const std::string text = telemetry::ExportPrometheus(registry);
  EXPECT_NE(text.find("tm_test_cumulative_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("tm_test_cumulative_bucket{le=\"2\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("tm_test_cumulative_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("tm_test_cumulative_sum 5"), std::string::npos);
}

TEST_F(TelemetryTest, ValidatorRejectsMalformedExposition) {
  std::string error;
  // Bad metric name.
  EXPECT_FALSE(telemetry::ValidatePrometheus("9metric 1\n", &error));
  // Unterminated label value.
  EXPECT_FALSE(telemetry::ValidatePrometheus("m{a=\"x} 1\n", &error));
  // Bad escape.
  EXPECT_FALSE(telemetry::ValidatePrometheus("m{a=\"\\x\"} 1\n", &error));
  // Missing value.
  EXPECT_FALSE(telemetry::ValidatePrometheus("m{a=\"x\"}\n", &error));
  // Unparsable value.
  EXPECT_FALSE(telemetry::ValidatePrometheus("m 1.2.3\n", &error));
  // Duplicate series.
  EXPECT_FALSE(telemetry::ValidatePrometheus("m 1\nm 2\n", &error));
  // Duplicate TYPE.
  EXPECT_FALSE(telemetry::ValidatePrometheus(
      "# TYPE m counter\n# TYPE m counter\nm 1\n", &error));
  // TYPE after a sample of the family.
  EXPECT_FALSE(
      telemetry::ValidatePrometheus("m 1\n# TYPE m counter\n", &error));
  // Unknown type token.
  EXPECT_FALSE(telemetry::ValidatePrometheus("# TYPE m widget\nm 1\n", &error));
  // Negative counter.
  EXPECT_FALSE(
      telemetry::ValidatePrometheus("# TYPE m counter\nm -1\n", &error));
  // Histogram without le="+Inf".
  EXPECT_FALSE(telemetry::ValidatePrometheus(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
      &error));
  // Histogram with non-monotone cumulative buckets.
  EXPECT_FALSE(telemetry::ValidatePrometheus(
      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n"
      "h_sum 1\nh_count 3\n",
      &error));
  // +Inf bucket disagreeing with _count.
  EXPECT_FALSE(telemetry::ValidatePrometheus(
      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
      &error));
  // Histogram family sample without a recognized suffix.
  EXPECT_FALSE(telemetry::ValidatePrometheus(
      "# TYPE h histogram\nh 3\n", &error));
}

TEST_F(TelemetryTest, ValidatorAcceptsWellFormedEdgeCases) {
  std::string error;
  EXPECT_TRUE(telemetry::ValidatePrometheus("", &error)) << error;
  EXPECT_TRUE(telemetry::ValidatePrometheus("# just a comment\n", &error))
      << error;
  EXPECT_TRUE(telemetry::ValidatePrometheus("m 1 1234567890\n", &error))
      << error;  // timestamp
  EXPECT_TRUE(telemetry::ValidatePrometheus("m{} 1\n", &error)) << error;
  EXPECT_TRUE(telemetry::ValidatePrometheus("m NaN\n", &error)) << error;
  EXPECT_TRUE(telemetry::ValidatePrometheus(
      "# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\n"
      "h_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n",
      &error))
      << error;
}

TEST_F(TelemetryTest, ExportValidatesWhileOtherThreadsMutate) {
  auto& registry = MetricsRegistry::Default();
  Counter* counter = registry.GetCounter("tm_test_racing_counter");
  Histogram* hist = registry.GetHistogram("tm_test_racing_hist");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      uint64_t v = static_cast<uint64_t>(t) + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Add(1);
        hist->Observe(v++ % 5000);
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    const std::string text = telemetry::ExportPrometheus(registry);
    std::string error;
    EXPECT_TRUE(telemetry::ValidatePrometheus(text, &error)) << error;
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

// ---------------------------------------------------------------------------
// Chrome trace exporter.

TEST_F(TelemetryTest, ExportChromeTraceEmitsCompleteEvents) {
  auto& registry = MetricsRegistry::Default();
  {
    telemetry::ScopedSpan span("tm_test_trace_span");
  }
  const std::string json = telemetry::ExportChromeTrace(registry);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tm_test_trace_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wavebatch\""), std::string::npos);
  // Braces and brackets balance (cheap structural sanity; the format has no
  // nested strings containing braces — span names are C identifiers).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// ---------------------------------------------------------------------------
// Integration: the canonical series flow when the engine runs.

struct EngineFixture {
  Schema schema = Schema::Uniform(2, 8);
  Relation rel;
  QueryBatch batch;
  std::shared_ptr<const SsePenalty> sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan;
  std::unique_ptr<CoefficientStore> store;

  EngineFixture() : rel(MakeUniformRelation(schema, 200, 11)), batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    batch.Add(RangeSumQuery::Count(
        Range::Create(schema, {{1, 6}, {0, 7}}).value()));
    batch.Add(RangeSumQuery::Count(
        Range::Create(schema, {{2, 5}, {3, 4}}).value()));
    plan = EvalPlan::Build(batch, strategy, sse).value();
    store = strategy.BuildStore(rel.FrequencyDistribution());
  }
};

TEST_F(TelemetryTest, SessionGaugesTrackProgressAndVanishOnDestruction) {
  EngineFixture f;
  auto& registry = MetricsRegistry::Default();
  const auto session_series = [&registry] {
    size_t n = 0;
    for (const auto& snap : registry.Snapshot()) {
      n += snap.name.rfind("wavebatch_session_", 0) == 0;
    }
    return n;
  };
  const size_t before = session_series();
  {
    EvalSession session(f.plan, UnownedStore(*f.store));
    // Four per-session gauges registered.
    EXPECT_EQ(session_series(), before + 4);
    ASSERT_TRUE(session.StepBatch(4).ok());
    session.WorstCaseBound(f.store->SumAbs());

    bool found = false;
    for (const auto& snap : registry.Snapshot()) {
      if (snap.name == "wavebatch_session_steps_taken") {
        EXPECT_DOUBLE_EQ(snap.gauge_value, 4.0);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  // Destruction removed this session's gauges (store-level series persist —
  // they are process-global, not per session).
  EXPECT_EQ(session_series(), before);
}

TEST_F(TelemetryTest, StoreAndPlanCacheAndSpanSeriesFlow) {
  EngineFixture f;
  auto& registry = MetricsRegistry::Default();
  const size_t spans_before = registry.Spans().size();

  PlanCache cache(4);
  WaveletStrategy strategy(f.schema, WaveletKind::kHaar);
  ASSERT_TRUE(cache.GetOrBuild(f.batch, strategy, f.sse).ok());  // miss
  ASSERT_TRUE(cache.GetOrBuild(f.batch, strategy, f.sse).ok());  // hit
  EXPECT_EQ(cache.evictions(), 0u);

  EvalSession session(f.plan, UnownedStore(*f.store));
  ASSERT_TRUE(session.RunToExact().ok());

  uint64_t hits = 0, misses = 0, keys = 0;
  for (const auto& snap : registry.Snapshot()) {
    if (snap.name == "wavebatch_plan_cache_hits_total") {
      hits = snap.counter_value;
    } else if (snap.name == "wavebatch_plan_cache_misses_total") {
      misses = snap.counter_value;
    } else if (snap.name == "wavebatch_store_keys_fetched_total") {
      keys += snap.counter_value;
    }
  }
  EXPECT_GE(hits, 1u);
  EXPECT_GE(misses, 1u);
  EXPECT_GE(keys, session.io().retrievals);

  // Spans: the cache lookup, the build under it, and the batched steps.
  int lookups = 0, builds = 0, steps = 0;
  const std::vector<telemetry::SpanEvent> spans = registry.Spans();
  for (size_t i = spans_before; i < spans.size(); ++i) {
    const std::string_view name(spans[i].name);
    lookups += name == "plan_cache_lookup";
    builds += name == "plan_build";
    steps += name == "session_step";
  }
  EXPECT_EQ(lookups, 2);
  EXPECT_GE(builds, 1);
  EXPECT_GE(steps, 1);
}

TEST_F(TelemetryTest, ThreadPoolMetricsCountTasks) {
  auto& registry = MetricsRegistry::Default();
  Counter* tasks = registry.GetCounter("wavebatch_thread_pool_tasks_total");
  Gauge* depth = registry.GetGauge("wavebatch_thread_pool_queue_depth");
  const uint64_t before = tasks->Value();
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor joins after the queue drains.
  }
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(tasks->Value(), before + 16);
  EXPECT_DOUBLE_EQ(depth->Value(), 0.0);
}

}  // namespace
}  // namespace wavebatch
