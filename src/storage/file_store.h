#ifndef WAVEBATCH_STORAGE_FILE_STORE_H_
#define WAVEBATCH_STORAGE_FILE_STORE_H_

#include <memory>
#include <string>

#include "storage/coefficient_store.h"
#include "util/status.h"

namespace wavebatch {

/// A coefficient store backed by a binary file on disk — the paper's
/// "stored with reasonable random-access cost" made literal. The file is a
/// flat array of little-endian doubles indexed by key; Peek/Fetch issue a
/// positioned read (pread) per coefficient, Add a read-modify-write.
///
/// FetchBatch is where this backend earns its keep: keys are sorted, runs
/// of nearby keys are coalesced into single positioned reads, and large
/// batches spread their reads across the shared ThreadPool (pread is
/// thread-safe on one descriptor). Retrievals are still counted per
/// coefficient — coalescing changes syscalls, not the paper's cost model.
///
/// This is the reference implementation for measuring real random-access
/// behavior; production deployments would add a buffer pool (compose with
/// BlockStore for the simulated version).
class FileStore : public CoefficientStore {
 public:
  /// Creates (truncates) `path` holding `values` and opens a store on it.
  static Result<std::unique_ptr<FileStore>> Create(
      const std::string& path, const std::vector<double>& values);

  /// Opens an existing store file; capacity is derived from the file size
  /// (must be a multiple of sizeof(double)).
  static Result<std::unique_ptr<FileStore>> Open(const std::string& path);

  ~FileStore() override;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  double Peek(uint64_t key) const override;
  void Add(uint64_t key, double delta) override;
  uint64_t NumNonZero() const override;
  double SumAbs() const override;
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override;
  std::string name() const override { return "file"; }

  uint64_t capacity() const { return capacity_; }
  const std::string& path() const { return path_; }

 protected:
  void DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                    IoStats* io) const override;

 private:
  /// One coalesced read covering file keys [first_key, last_key]; `targets`
  /// lists (key, out index) pairs to scatter from the read buffer.
  struct Run {
    uint64_t first_key;
    uint64_t last_key;
    size_t targets_begin;  // range into the batch's key-sorted index order
    size_t targets_end;
  };

  /// Reads `run` with a single pread and scatters into `out` via `order`
  /// (indices into keys/out, sorted by key).
  void ReadRun(const Run& run, std::span<const uint64_t> keys,
               std::span<const size_t> order, std::span<double> out) const;

  FileStore(std::string path, int fd, uint64_t capacity)
      : path_(std::move(path)), fd_(fd), capacity_(capacity) {}

  std::string path_;
  int fd_;
  uint64_t capacity_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_FILE_STORE_H_
