# Empty compiler generated dependencies file for wavebatch_cube.
# This may be replaced when dependencies are built.
