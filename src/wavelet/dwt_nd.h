#ifndef WAVEBATCH_WAVELET_DWT_ND_H_
#define WAVEBATCH_WAVELET_DWT_ND_H_

#include "cube/dense_cube.h"
#include "wavelet/dwt1d.h"
#include "wavelet/filters.h"

namespace wavebatch {

/// In-place standard (tensor-product) d-dimensional DWT of `cube`: the full
/// 1-D transform of ForwardDwt1D is applied along every axis in turn. The
/// resulting basis is the tensor product of 1-D wavelet bases, which is what
/// makes the transform of a separable query vector factor into per-dimension
/// transforms (Section 3's sparsity bounds rely on this decomposition).
void ForwardDwtNd(DenseCube& cube, const WaveletFilter& filter);

/// Inverse of ForwardDwtNd.
void InverseDwtNd(DenseCube& cube, const WaveletFilter& filter);

}  // namespace wavebatch

#endif  // WAVEBATCH_WAVELET_DWT_ND_H_
