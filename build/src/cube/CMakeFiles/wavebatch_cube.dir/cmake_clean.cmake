file(REMOVE_RECURSE
  "CMakeFiles/wavebatch_cube.dir/dense_cube.cc.o"
  "CMakeFiles/wavebatch_cube.dir/dense_cube.cc.o.d"
  "CMakeFiles/wavebatch_cube.dir/relation.cc.o"
  "CMakeFiles/wavebatch_cube.dir/relation.cc.o.d"
  "CMakeFiles/wavebatch_cube.dir/schema.cc.o"
  "CMakeFiles/wavebatch_cube.dir/schema.cc.o.d"
  "libwavebatch_cube.a"
  "libwavebatch_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavebatch_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
