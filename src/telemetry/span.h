#ifndef WAVEBATCH_TELEMETRY_SPAN_H_
#define WAVEBATCH_TELEMETRY_SPAN_H_

#include <chrono>

#include "telemetry/metrics.h"

namespace wavebatch::telemetry {

/// RAII evaluation span: times the enclosing scope on the wall clock and
/// records it into the process registry's span buffer on destruction.
/// Spans opened while another span on the same thread is live nest by
/// interval containment — the Chrome trace exporter renders the hierarchy
/// without any explicit parent links.
///
/// The canonical instrumentation points use fixed names:
///   plan_build         — EvalPlan::Build (rewrite + importances + orders)
///   plan_cache_lookup  — PlanCache::GetOrBuild (contains plan_build on miss)
///   session_step       — EvalSession::StepBatch / StepBlock
///   store_fetch_batch  — CoefficientStore::FetchBatch (emitted by the
///                        wrapper together with the latency histogram)
///
/// When the registry is disabled the constructor reads one relaxed flag and
/// the span never touches a clock.
class ScopedSpan {
 public:
  /// `name` must have static storage duration (pass a string literal).
  explicit ScopedSpan(const char* name) {
    if (Enabled()) {
      name_ = name;
      begin_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedSpan() {
    if (name_ != nullptr) {
      MetricsRegistry::Default().RecordSpan(name_, begin_,
                                            std::chrono::steady_clock::now());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point begin_{};
};

}  // namespace wavebatch::telemetry

#endif  // WAVEBATCH_TELEMETRY_SPAN_H_
