// Figure 5 + Observation 2 (Section 6): "Progressive estimates become
// accurate quickly." Mean relative error of the progressive estimates
// versus the number of wavelet coefficients retrieved (log-log in the
// paper). The paper reports MRE < 1% after 128 retrievals for 512 queries
// — less than one I/O per query.

#include "bench_common.h"
#include "util/table.h"
#include "core/progressive.h"
#include "core/trace.h"
#include "penalty/sse.h"

namespace wavebatch::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              "bench_fig5_mre: reproduce Figure 5 (progressive MRE)\n" +
                  kCommonFlagsHelp);
  TemperatureDatasetOptions options = DataOptionsFromFlags(flags);
  const std::vector<size_t> parts = PartsFromFlags(flags);
  size_t num_ranges = 1;
  for (size_t p : parts) num_ranges *= p;

  Stopwatch total;
  std::cout << "building experiment (domain "
            << TemperatureSchema(options).ToString() << ", "
            << options.num_records << " records, " << num_ranges
            << " ranges)..." << std::endl;
  Experiment exp(options, parts, 1234, WaveletKind::kDb4);

  SsePenalty sse;
  double norm = 0.0;
  for (double e : exp.exact) norm += e * e;

  ProgressiveEvaluator ev(&exp.list, &sse, exp.store.get());
  ProgressionTrace trace = ProgressionTrace::Run(
      ev, exp.exact, {{"normalized_sse", &sse, norm}},
      /*dense_until=*/32, /*growth=*/1.3, /*k_sum_abs=*/exp.store->SumAbs(),
      /*domain_cells=*/exp.cube.schema().cell_count());

  std::cout << "\nFigure 5: progressive mean relative error "
            << "(biggest-B, SSE importance), " << exp.workload.batch.size()
            << " queries, master list " << exp.list.size() << "\n";
  trace.ToTable().Print(std::cout);

  // Headline numbers.
  uint64_t below_1pct = 0, below_01pct = 0;
  for (const auto& pt : trace.points()) {
    if (below_1pct == 0 && pt.mean_relative_error < 0.01) {
      below_1pct = pt.retrieved;
    }
    if (below_01pct == 0 && pt.mean_relative_error < 0.001) {
      below_01pct = pt.retrieved;
    }
  }
  const size_t s = exp.workload.batch.size();
  std::cout << "\nMRE < 1% after ~" << below_1pct << " retrievals ("
            << FormatDouble(static_cast<double>(below_1pct) / s, 3)
            << " per query; paper: 128 retrievals = 0.25/query)\n";
  std::cout << "MRE < 0.1% after ~" << below_01pct << " retrievals ("
            << FormatDouble(static_cast<double>(below_01pct) / s, 3)
            << " per query)\n";
  std::cout << "exact after " << exp.list.size() << " retrievals ("
            << FormatDouble(static_cast<double>(exp.list.size()) / s, 3)
            << " per query)\n";
  std::cout << "elapsed: " << FormatDouble(total.ElapsedSeconds(), 3)
            << "s\n";

  const std::string csv = flags.Str("csv", "");
  if (!csv.empty() && !trace.ToTable().WriteCsv(csv)) return 1;
  if (!WriteMetricsOut(flags)) return 1;
  return 0;
}

}  // namespace
}  // namespace wavebatch::bench

int main(int argc, char** argv) { return wavebatch::bench::Main(argc, argv); }
