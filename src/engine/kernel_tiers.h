#ifndef WAVEBATCH_ENGINE_KERNEL_TIERS_H_
#define WAVEBATCH_ENGINE_KERNEL_TIERS_H_

#include <cstddef>

#include "engine/apply_kernel.h"
#include "util/cpu_features.h"

namespace wavebatch {

namespace kernels {

/// Per-ISA implementations of ApplyKernel::ApplyOrderedSlice, compiled in
/// their own translation units (kernel_avx2.cc / kernel_avx512.cc) with the
/// matching -m flags so the rest of the tree keeps its baseline codegen.
///
/// The bit-identity contract: per use j of entry row r, every tier computes
/// round(coeff[j] * data) with one IEEE multiply, then round(est + product)
/// with one IEEE add into estimates[query[j]]. The SIMD tiers vectorize
/// windows of four uses whose query indices are CONSECUTIVE (query indices
/// within a CSR row are strictly ascending, so query[j+3] == query[j]+3
/// proves it): one vector load of the estimate slots, one per-lane
/// correctly-rounded multiply, one vector add, one store. The four slots of
/// a window are distinct and each is read-modified-written exactly once per
/// row, so per-slot operation sequences are identical to the scalar loop no
/// matter how lanes are grouped; non-contiguous positions run the scalar
/// two-step form verbatim. No FMA anywhere, and the whole tree builds with
/// -ffp-contract=off, so no compiler can fuse the multiply-add on either
/// path. Rows are applied strictly in `order`, and importance consumption
/// interleaves exactly as in the scalar tier.
///
/// On a toolchain whose compiler cannot target the ISA, the TU compiles a
/// forward to the scalar kernel instead; dispatch never selects such a tier
/// (KernelTierCompiled() is false), the forward only keeps linking uniform.
void ApplyOrderedSliceAvx2(const ApplyKernel& kernel, const size_t* order,
                           size_t n, const double* values, double* estimates,
                           double* remaining);
void ApplyOrderedSliceAvx512(const ApplyKernel& kernel, const size_t* order,
                             size_t n, const double* values, double* estimates,
                             double* remaining);

}  // namespace kernels

/// Tier dispatch for the fused batch apply. `tier` must be usable on this
/// host (EvalSession resolves it once per session via BestKernelTier() or a
/// checked per-session override).
inline void ApplyOrderedSliceTiered(const ApplyKernel& kernel, KernelTier tier,
                                    const size_t* order, size_t n,
                                    const double* values, double* estimates,
                                    double* remaining) {
  switch (tier) {
    case KernelTier::kAvx512:
      kernels::ApplyOrderedSliceAvx512(kernel, order, n, values, estimates,
                                       remaining);
      return;
    case KernelTier::kAvx2:
      kernels::ApplyOrderedSliceAvx2(kernel, order, n, values, estimates,
                                     remaining);
      return;
    case KernelTier::kScalar:
      break;
  }
  kernel.ApplyOrderedSlice(order, n, values, estimates, remaining);
}

}  // namespace wavebatch

#endif  // WAVEBATCH_ENGINE_KERNEL_TIERS_H_
