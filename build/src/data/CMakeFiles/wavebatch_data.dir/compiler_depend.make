# Empty compiler generated dependencies file for wavebatch_data.
# This may be replaced when dependencies are built.
