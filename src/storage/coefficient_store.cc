#include "storage/coefficient_store.h"

#include <map>
#include <mutex>

namespace wavebatch {

const StoreFetchMetrics& CoefficientStore::BindFetchTelemetry() const {
  // Handles are interned per store *name*: two stores reporting the same
  // name() share one set of time series (e.g. many FileStore instances over
  // the same format), and the leaked table keeps every handle alive for the
  // process lifetime, so a store destroyed mid-export never dangles.
  static std::mutex mu;
  static auto* table = new std::map<std::string, StoreFetchMetrics>();
  const std::string store = name();
  std::lock_guard<std::mutex> lock(mu);
  auto it = table->find(store);
  if (it == table->end()) {
    auto& registry = telemetry::MetricsRegistry::Default();
    StoreFetchMetrics m;
    m.keys_fetched = registry.GetCounter(
        "wavebatch_store_keys_fetched_total", {{"store", store}},
        "Coefficient keys successfully fetched via Fetch/FetchBatch.");
    m.bytes_fetched = registry.GetCounter(
        "wavebatch_store_bytes_fetched_total", {{"store", store}},
        "Coefficient payload bytes successfully fetched.");
    const std::string errors_help = "Failed fetches by status code.";
    m.errors_unavailable = registry.GetCounter(
        "wavebatch_store_fetch_errors_total",
        {{"store", store}, {"code", "unavailable"}}, errors_help);
    m.errors_out_of_range = registry.GetCounter(
        "wavebatch_store_fetch_errors_total",
        {{"store", store}, {"code", "out_of_range"}}, errors_help);
    m.errors_other = registry.GetCounter(
        "wavebatch_store_fetch_errors_total",
        {{"store", store}, {"code", "other"}}, errors_help);
    m.batch_latency_ns = registry.GetHistogram(
        "wavebatch_store_fetch_batch_latency_ns", {{"store", store}},
        "FetchBatch wall-clock latency in nanoseconds.");
    it = table->emplace(store, m).first;
  }
  fetch_telemetry_.store(&it->second, std::memory_order_release);
  return it->second;
}

}  // namespace wavebatch
