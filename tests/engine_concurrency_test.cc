// Concurrent serving: N threads each drive an independent EvalSession over
// ONE shared read-only store and one shared plan. Per-session estimates,
// bounds, and IoStats must be bit-identical to the same session run
// serially — retrieval is const and sessions share no mutable state. Run
// under TSan/ASan in CI to gate the concurrent read path.

#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "engine/plan_cache.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "storage/block_store.h"
#include "storage/dense_store.h"
#include "storage/file_store.h"
#include "storage/memory_store.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

constexpr size_t kNumThreads = 8;

struct SessionOutcome {
  std::vector<double> estimates;
  double worst_case_bound = 0.0;
  double expected_penalty = 0.0;
  IoStats io;
};

struct Fixture {
  Schema schema = Schema::Uniform(2, 16);
  Relation rel;
  QueryBatch batch;
  std::shared_ptr<const SsePenalty> sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan;
  std::unique_ptr<CoefficientStore> store;
  double k_sum_abs = 0.0;

  Fixture() : rel(MakeUniformRelation(schema, 600, 5)), batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    Rng rng(21);
    for (int i = 0; i < 10; ++i) {
      uint32_t lo0 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi0 = lo0 + static_cast<uint32_t>(rng.UniformInt(16 - lo0));
      uint32_t lo1 = static_cast<uint32_t>(rng.UniformInt(16));
      uint32_t hi1 = lo1 + static_cast<uint32_t>(rng.UniformInt(16 - lo1));
      batch.Add(RangeSumQuery::Count(
          Range::Create(schema, {{lo0, hi0}, {lo1, hi1}}).value()));
    }
    Result<std::shared_ptr<const EvalPlan>> built =
        EvalPlan::Build(batch, strategy, sse);
    plan = built.value();
    store = strategy.BuildStore(rel.FrequencyDistribution());
    k_sum_abs = store->SumAbs();
  }

  /// Thread t's session config: different orders, seeds, and stopping
  /// points so concurrent sessions genuinely diverge.
  EvalSession::Options OptionsFor(size_t t) const {
    EvalSession::Options opts;
    static constexpr ProgressionOrder kOrders[] = {
        ProgressionOrder::kBiggestB, ProgressionOrder::kRoundRobin,
        ProgressionOrder::kRandom, ProgressionOrder::kKeyOrder};
    opts.order = kOrders[t % std::size(kOrders)];
    opts.seed = 1000 + t;
    return opts;
  }

  SessionOutcome RunSession(const CoefficientStore& backend, size_t t) const {
    EvalSession session(plan, UnownedStore(backend), OptionsFor(t));
    // Odd threads stop mid-progression, even threads run to exactness —
    // mixed batch sizes exercise Fetch and FetchBatch paths.
    const size_t stop = (t % 2 == 1) ? plan->size() / (t + 1) : plan->size();
    while (!session.Done() && session.StepsTaken() < stop) {
      if (t % 3 == 0) {
        session.StepBatch(7);
      } else {
        session.Step();
      }
    }
    SessionOutcome out;
    out.estimates = session.Estimates();
    out.worst_case_bound = session.WorstCaseBound(k_sum_abs);
    out.expected_penalty = session.ExpectedPenalty(schema.cell_count());
    out.io = session.io();
    return out;
  }

  void ExpectConcurrentMatchesSerial(const CoefficientStore& backend) const {
    std::vector<SessionOutcome> serial(kNumThreads);
    for (size_t t = 0; t < kNumThreads; ++t) {
      serial[t] = RunSession(backend, t);
    }
    std::vector<SessionOutcome> concurrent(kNumThreads);
    std::vector<std::thread> threads;
    threads.reserve(kNumThreads);
    for (size_t t = 0; t < kNumThreads; ++t) {
      threads.emplace_back(
          [&, t] { concurrent[t] = RunSession(backend, t); });
    }
    for (std::thread& th : threads) th.join();
    for (size_t t = 0; t < kNumThreads; ++t) {
      ASSERT_EQ(concurrent[t].estimates.size(), serial[t].estimates.size());
      for (size_t q = 0; q < serial[t].estimates.size(); ++q) {
        EXPECT_EQ(concurrent[t].estimates[q], serial[t].estimates[q])
            << "thread " << t << " query " << q;
      }
      EXPECT_EQ(concurrent[t].worst_case_bound, serial[t].worst_case_bound)
          << "thread " << t;
      EXPECT_EQ(concurrent[t].expected_penalty, serial[t].expected_penalty)
          << "thread " << t;
      EXPECT_EQ(concurrent[t].io, serial[t].io) << "thread " << t;
    }
  }
};

TEST(EngineConcurrencyTest, HashStoreBackend) {
  Fixture f;
  f.ExpectConcurrentMatchesSerial(*f.store);
}

TEST(EngineConcurrencyTest, DenseStoreBackend) {
  Fixture f;
  uint64_t max_key = 0;
  f.store->ForEachNonZero(
      [&](uint64_t key, double) { max_key = std::max(max_key, key); });
  std::vector<double> values(max_key + 1, 0.0);
  f.store->ForEachNonZero(
      [&](uint64_t key, double value) { values[key] = value; });
  DenseStore dense(values);
  f.ExpectConcurrentMatchesSerial(dense);
}

TEST(EngineConcurrencyTest, FileStoreBackend) {
  Fixture f;
  uint64_t max_key = 0;
  f.store->ForEachNonZero(
      [&](uint64_t key, double) { max_key = std::max(max_key, key); });
  std::vector<double> values(max_key + 1, 0.0);
  f.store->ForEachNonZero(
      [&](uint64_t key, double value) { values[key] = value; });
  const std::string path = ::testing::TempDir() + "/wavebatch_engine_conc.bin";
  Result<std::unique_ptr<FileStore>> file = FileStore::Create(path, values);
  ASSERT_TRUE(file.ok()) << file.status();
  f.ExpectConcurrentMatchesSerial(**file);
  std::remove(path.c_str());
}

TEST(EngineConcurrencyTest, UnbufferedBlockStoreBackend) {
  // cache_blocks = 0: no shared LRU state, so per-session block_reads are
  // interleaving-independent and must match the serial run exactly.
  Fixture f;
  auto inner = std::make_unique<HashStore>();
  f.store->ForEachNonZero(
      [&](uint64_t key, double value) { inner->Add(key, value); });
  BlockStore block(std::move(inner), /*block_size=*/8, /*cache_blocks=*/0);
  f.ExpectConcurrentMatchesSerial(block);
}

TEST(EngineConcurrencyTest, BufferedBlockStoreIsRaceFreeAndValueCorrect) {
  // With a live LRU the hit/miss split of one session depends on what the
  // other threads touched, so only values and retrieval counts are
  // asserted — the point of this test is the mutex-guarded buffer under
  // TSan, plus the invariant block_reads + block_hits == per-session total
  // block touches.
  Fixture f;
  auto inner = std::make_unique<HashStore>();
  f.store->ForEachNonZero(
      [&](uint64_t key, double value) { inner->Add(key, value); });
  BlockStore block(std::move(inner), /*block_size=*/8, /*cache_blocks=*/4);

  std::vector<SessionOutcome> serial(kNumThreads);
  for (size_t t = 0; t < kNumThreads; ++t) {
    serial[t] = f.RunSession(block, t);
  }
  std::vector<SessionOutcome> concurrent(kNumThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kNumThreads; ++t) {
    threads.emplace_back(
        [&, t] { concurrent[t] = f.RunSession(block, t); });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < kNumThreads; ++t) {
    for (size_t q = 0; q < serial[t].estimates.size(); ++q) {
      EXPECT_EQ(concurrent[t].estimates[q], serial[t].estimates[q])
          << "thread " << t << " query " << q;
    }
    EXPECT_EQ(concurrent[t].io.retrievals, serial[t].io.retrievals);
    EXPECT_EQ(concurrent[t].io.block_reads + concurrent[t].io.block_hits,
              serial[t].io.block_reads + serial[t].io.block_hits)
        << "thread " << t;
  }
}

TEST(EngineConcurrencyTest, IoStatsAggregateAcrossSessionsIntoSharedSink) {
  // IoStats writes are caller-synchronized by contract: each session owns
  // its sink while running, and a shared "all traffic" sink is fed by
  // operator+= under the caller's lock afterwards. The aggregate must be
  // exactly the field-wise sum of the per-session counters — order
  // independent, nothing lost or double-counted under concurrency.
  Fixture f;
  auto inner = std::make_unique<HashStore>();
  f.store->ForEachNonZero(
      [&](uint64_t key, double value) { inner->Add(key, value); });
  // A buffered BlockStore populates all three IoStats fields.
  BlockStore block(std::move(inner), /*block_size=*/8, /*cache_blocks=*/4);

  IoStats shared_sink;
  std::mutex sink_mu;
  std::vector<IoStats> per_session(kNumThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      const SessionOutcome out = f.RunSession(block, t);
      per_session[t] = out.io;
      std::lock_guard<std::mutex> lock(sink_mu);
      shared_sink += out.io;
    });
  }
  for (std::thread& th : threads) th.join();

  IoStats expected;
  uint64_t retrievals = 0, block_reads = 0, block_hits = 0;
  for (const IoStats& io : per_session) {
    expected += io;
    retrievals += io.retrievals;
    block_reads += io.block_reads;
    block_hits += io.block_hits;
  }
  EXPECT_GT(retrievals, 0u);
  EXPECT_GT(block_reads + block_hits, 0u);
  // operator+= accumulated exactly the field-wise sums…
  EXPECT_EQ(expected.retrievals, retrievals);
  EXPECT_EQ(expected.block_reads, block_reads);
  EXPECT_EQ(expected.block_hits, block_hits);
  // …and the concurrently fed sink agrees with the serial re-aggregation
  // (operator== compares every field).
  EXPECT_EQ(shared_sink, expected);

  // += is identity-based: folding the aggregate into a fresh sink changes
  // nothing, and Reset() returns to the identity.
  IoStats zero;
  zero += shared_sink;
  EXPECT_EQ(zero, shared_sink);
  zero.Reset();
  EXPECT_EQ(zero, IoStats{});
}

TEST(EngineConcurrencyTest, PlanCacheSharedAcrossThreads) {
  Fixture f;
  WaveletStrategy strategy(f.schema, WaveletKind::kHaar);
  PlanCache cache(8);
  std::vector<std::shared_ptr<const EvalPlan>> plans(kNumThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<std::shared_ptr<const EvalPlan>> plan =
          cache.GetOrBuild(f.batch, strategy, f.sse);
      ASSERT_TRUE(plan.ok());
      plans[t] = plan.value();
      EvalSession session(plans[t], UnownedStore(*f.store));
      session.StepBatch(16);
      EXPECT_EQ(session.io().retrievals,
                std::min<uint64_t>(16, plans[t]->size()));
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(cache.hits() + cache.misses(), kNumThreads);
  // Any number of threads may race past the lookup before the first insert
  // and build concurrently (by design: planning happens outside the lock),
  // so the hit count is scheduling-dependent — only the first touch is
  // guaranteed to miss.
  EXPECT_GE(cache.misses(), 1u);
  // Whatever mix of hits/races happened, the cache now serves one plan.
  Result<std::shared_ptr<const EvalPlan>> final_plan =
      cache.GetOrBuild(f.batch, strategy, f.sse);
  ASSERT_TRUE(final_plan.ok());
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace wavebatch
