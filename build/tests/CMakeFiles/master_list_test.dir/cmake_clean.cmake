file(REMOVE_RECURSE
  "CMakeFiles/master_list_test.dir/master_list_test.cc.o"
  "CMakeFiles/master_list_test.dir/master_list_test.cc.o.d"
  "master_list_test"
  "master_list_test.pdb"
  "master_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
