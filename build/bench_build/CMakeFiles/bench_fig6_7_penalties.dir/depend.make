# Empty dependencies file for bench_fig6_7_penalties.
# This may be replaced when dependencies are built.
