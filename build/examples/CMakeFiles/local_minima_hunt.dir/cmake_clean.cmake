file(REMOVE_RECURSE
  "CMakeFiles/local_minima_hunt.dir/local_minima_hunt.cpp.o"
  "CMakeFiles/local_minima_hunt.dir/local_minima_hunt.cpp.o.d"
  "local_minima_hunt"
  "local_minima_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_minima_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
