#include "storage/versioned_store.h"

#include <utility>

#include "storage/memory_store.h"
#include "telemetry/span.h"
#include "util/check.h"

namespace wavebatch {

// ---------------------------------------------------------------------------
// SnapshotStore

SnapshotStore::SnapshotStore(uint64_t epoch,
                             std::shared_ptr<const CoefficientStore> base,
                             std::shared_ptr<const DeltaOverlay> overlay)
    : epoch_(epoch),
      base_(std::move(base)),
      overlay_(std::move(overlay)),
      name_("snapshot(" + base_->name() + ")") {
  WB_CHECK(base_ != nullptr);
}

double SnapshotStore::Peek(uint64_t key) const {
  double value = base_->Peek(key);
  if (overlay_ != nullptr) {
    const auto it = overlay_->adds.find(key);
    // Only add when the key was actually written: `x + 0.0` is not a
    // bitwise no-op for x = -0.0, and untouched keys must read exactly as
    // the base stores them.
    if (it != overlay_->adds.end()) value += it->second;
  }
  return value;
}

void SnapshotStore::Add(uint64_t key, double delta) {
  (void)key;
  (void)delta;
  WB_CHECK(false) << "SnapshotStore is an immutable epoch view; write "
                     "through the owning VersionedStore";
}

Result<double> SnapshotStore::DoFetch(uint64_t key, IoStats* io) const {
  Result<double> value = DelegateFetch(*base_, key, io);
  if (!value.ok() || overlay_ == nullptr) return value;
  const auto it = overlay_->adds.find(key);
  if (it == overlay_->adds.end()) return value;
  return *value + it->second;
}

Status SnapshotStore::DoFetchBatch(std::span<const uint64_t> keys,
                                   std::span<double> out, IoStats* io) const {
  Status status = DelegateFetchBatch(*base_, keys, out, io);
  if (!status.ok() || overlay_ == nullptr) return status;
  for (size_t i = 0; i < keys.size(); ++i) {
    const auto it = overlay_->adds.find(keys[i]);
    if (it != overlay_->adds.end()) out[i] += it->second;
  }
  return Status::OK();
}

Status SnapshotStore::DoFetchBatchRouted(std::span<const uint64_t> keys,
                                         std::span<const uint32_t> shards,
                                         std::span<double> out,
                                         IoStats* io) const {
  // Hints were computed against router(), which is the base's router, so
  // they are valid to forward.
  Status status = DelegateFetchBatchRouted(*base_, keys, shards, out, io);
  if (!status.ok() || overlay_ == nullptr) return status;
  for (size_t i = 0; i < keys.size(); ++i) {
    const auto it = overlay_->adds.find(keys[i]);
    if (it != overlay_->adds.end()) out[i] += it->second;
  }
  return Status::OK();
}

uint64_t SnapshotStore::NumNonZero() const {
  uint64_t count = 0;
  ForEachNonZero([&count](uint64_t, double) { ++count; });
  return count;
}

double SnapshotStore::SumAbs() const {
  double sum = 0.0;
  ForEachNonZero([&sum](uint64_t, double v) { sum += v < 0 ? -v : v; });
  return sum;
}

void SnapshotStore::ForEachNonZero(
    const std::function<void(uint64_t, double)>& fn) const {
  if (overlay_ == nullptr) {
    base_->ForEachNonZero(fn);
    return;
  }
  // Base keys, overlay-adjusted; merged zeros are skipped to honor the
  // "stored nonzero" contract of the merged view.
  base_->ForEachNonZero([this, &fn](uint64_t key, double value) {
    const auto it = overlay_->adds.find(key);
    if (it != overlay_->adds.end()) value += it->second;
    if (value != 0.0) fn(key, value);
  });
  // Overlay-only keys (backends never store zeros, so base Peek == 0 means
  // "absent from base", not "stored zero").
  for (const auto& [key, value] : overlay_->adds) {
    if (value != 0.0 && base_->Peek(key) == 0.0) fn(key, value);
  }
}

// ---------------------------------------------------------------------------
// VersionedStore

std::unique_ptr<CoefficientStore> VersionedStore::HashMerge(
    const CoefficientStore& base, const DeltaOverlay& overlay) {
  auto merged = std::make_unique<HashStore>();
  base.ForEachNonZero(
      [&merged](uint64_t key, double value) { merged->Add(key, value); });
  // One addition per overlay key — the identical addition a snapshot read
  // performs, so post-merge reads are bitwise equal to pre-merge reads of
  // the same logical contents. Zero-sum overlay entries are dropped by
  // HashStore::Add, matching `x + 0.0 == x` for every value a backend can
  // store (backends never hold ±0.0).
  for (const auto& [key, value] : overlay.adds) merged->Add(key, value);
  return merged;
}

VersionedStore::VersionedStore(std::unique_ptr<CoefficientStore> base,
                               VersionedStoreOptions options)
    : options_(std::move(options)),
      name_("versioned(" + (base != nullptr ? base->name() : "") + ")"),
      base_(std::move(base)) {
  WB_CHECK(base_ != nullptr);
  snapshot_.Store(std::make_shared<SnapshotStore>(0, base_, nullptr));

  auto& registry = telemetry::MetricsRegistry::Default();
  const std::string store = name();
  ingests_metric_ = registry.GetCounter(
      "wavebatch_versioned_ingests_total", {{"store", store}},
      "Streaming ingest calls absorbed by the delta plane.");
  ingested_entries_metric_ = registry.GetCounter(
      "wavebatch_versioned_ingested_entries_total", {{"store", store}},
      "Sparse coefficient entries absorbed by the delta plane.");
  publishes_metric_ =
      registry.GetCounter("wavebatch_versioned_publishes_total",
                          {{"store", store}}, "Epoch snapshots published.");
  merges_metric_ = registry.GetCounter(
      "wavebatch_versioned_merges_total", {{"store", store}},
      "Delta-into-base merges completed.");
  epoch_gauge_ =
      registry.GetGauge("wavebatch_versioned_epoch", {{"store", store}},
                        "Current published epoch.");
  delta_entries_gauge_ = registry.GetGauge(
      "wavebatch_versioned_delta_entries", {{"store", store}},
      "Distinct unmerged coefficient keys (active + merging overlays).");
}

VersionedStore::~VersionedStore() { WaitForMerge(); }

void VersionedStore::Ingest(const SparseVec& delta) {
  uint64_t published = 0;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    active_.Apply(delta);
    ingests_metric_->Add(1);
    ingested_entries_metric_->Add(delta.size());
    published = MaybeAutoPublishLocked();
  }
  NotifyPublished(published);
}

void VersionedStore::Add(uint64_t key, double delta) {
  uint64_t published = 0;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    active_.ApplyOne(key, delta);
    ingests_metric_->Add(1);
    ingested_entries_metric_->Add(1);
    published = MaybeAutoPublishLocked();
  }
  NotifyPublished(published);
}

uint64_t VersionedStore::MaybeAutoPublishLocked() {
  ++pending_since_publish_;
  if (options_.publish_every > 0 &&
      pending_since_publish_ >= options_.publish_every) {
    return PublishLocked();
  }
  return 0;
}

void VersionedStore::NotifyPublished(uint64_t epoch) const {
  if (epoch != 0 && options_.on_publish != nullptr) {
    options_.on_publish(epoch);
  }
}

uint64_t VersionedStore::PublishLocked() {
  std::shared_ptr<const DeltaOverlay> overlay = active_.Seal(merging_.get());
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  snapshot_.Store(
      std::make_shared<SnapshotStore>(epoch, base_, std::move(overlay)));
  publishes_metric_->Add(1);
  epoch_gauge_->Set(static_cast<double>(epoch));
  delta_entries_gauge_->Set(static_cast<double>(
      active_.size() + (merging_ != nullptr ? merging_->size() : 0)));
  pending_since_publish_ = 0;
  return epoch;
}

uint64_t VersionedStore::Publish() {
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    epoch = PublishLocked();
  }
  NotifyPublished(epoch);
  return epoch;
}

uint64_t VersionedStore::Merge() {
  std::shared_ptr<const CoefficientStore> old_base;
  std::shared_ptr<const DeltaOverlay> overlay;
  {
    std::unique_lock<std::mutex> lock(write_mu_);
    merge_cv_.wait(lock, [this] { return !merge_in_flight_; });
    overlay = active_.Seal(merging_.get());
    if (overlay == nullptr) return epoch_.load(std::memory_order_relaxed);
    merging_ = overlay;
    active_.Clear();
    merge_in_flight_ = true;
    old_base = base_;
  }
  FoldAndSwap(std::move(old_base), std::move(overlay));
  return epoch_.load(std::memory_order_relaxed);
}

bool VersionedStore::StartBackgroundMerge(ThreadPool* pool) {
  std::shared_ptr<const CoefficientStore> old_base;
  std::shared_ptr<const DeltaOverlay> overlay;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (merge_in_flight_) return false;
    overlay = active_.Seal(merging_.get());
    if (overlay == nullptr) return false;
    merging_ = overlay;
    active_.Clear();
    merge_in_flight_ = true;
    old_base = base_;
  }
  ThreadPool& runner = pool != nullptr ? *pool : ThreadPool::Shared();
  runner.Submit(
      [this, base = std::move(old_base), delta = std::move(overlay)]() mutable {
        FoldAndSwap(std::move(base), std::move(delta));
      });
  return true;
}

void VersionedStore::FoldAndSwap(
    std::shared_ptr<const CoefficientStore> old_base,
    std::shared_ptr<const DeltaOverlay> overlay) {
  std::shared_ptr<const CoefficientStore> new_base;
  {
    telemetry::ScopedSpan span("versioned_merge");
    new_base = options_.merge_fn != nullptr
                   ? options_.merge_fn(*old_base, *overlay)
                   : HashMerge(*old_base, *overlay);
    WB_CHECK(new_base != nullptr) << "merge_fn returned null";
  }
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    base_ = std::move(new_base);
    merging_ = nullptr;
    // Republish on the new base: the post-merge epoch carries exactly the
    // ingests that landed while the fold ran (they stayed in active_).
    epoch = PublishLocked();
    merges_metric_->Add(1);
  }
  // Off-lock (the callback may re-enter the store) but BEFORE the merge is
  // marked complete: the destructor waits on merge_in_flight_, so firing
  // after would let the store die under a background-merge callback. The
  // one restriction this buys: on_publish must not block on Merge()/
  // WaitForMerge() (it would self-deadlock).
  NotifyPublished(epoch);
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    merge_in_flight_ = false;
    // Notify under the lock: a WaitForMerge caller (the destructor) may
    // otherwise observe the cleared flag and destroy merge_cv_ while this
    // thread is still inside notify_all.
    merge_cv_.notify_all();
  }
}

void VersionedStore::WaitForMerge() {
  std::unique_lock<std::mutex> lock(write_mu_);
  merge_cv_.wait(lock, [this] { return !merge_in_flight_; });
}

size_t VersionedStore::delta_entries() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  return active_.size() + (merging_ != nullptr ? merging_->size() : 0);
}

double VersionedStore::Peek(uint64_t key) const {
  std::lock_guard<std::mutex> lock(write_mu_);
  // Associate the overlays first — (merging + active) — then add the base,
  // mirroring how Seal() composes overlays and SnapshotStore applies them.
  // Grouping as (base + merging) + active instead would make the
  // authoritative view drift from a just-published snapshot by a last bit.
  bool present = false;
  double delta = 0.0;
  if (merging_ != nullptr) {
    const auto it = merging_->adds.find(key);
    if (it != merging_->adds.end()) {
      present = true;
      delta = it->second;
    }
  }
  const auto it = active_.adds().find(key);
  if (it != active_.adds().end()) {
    present = true;
    delta += it->second;
  }
  const double value = base_->Peek(key);
  return present ? value + delta : value;
}

uint64_t VersionedStore::NumNonZero() const { return Snapshot()->NumNonZero(); }

double VersionedStore::SumAbs() const { return Snapshot()->SumAbs(); }

void VersionedStore::ForEachNonZero(
    const std::function<void(uint64_t, double)>& fn) const {
  Snapshot()->ForEachNonZero(fn);
}

Result<double> VersionedStore::DoFetch(uint64_t key, IoStats* io) const {
  const std::shared_ptr<const SnapshotStore> snap = snapshot_.Pin();
  return DelegateFetch(*snap, key, io);
}

Status VersionedStore::DoFetchBatch(std::span<const uint64_t> keys,
                                    std::span<double> out, IoStats* io) const {
  const std::shared_ptr<const SnapshotStore> snap = snapshot_.Pin();
  return DelegateFetchBatch(*snap, keys, out, io);
}

}  // namespace wavebatch
