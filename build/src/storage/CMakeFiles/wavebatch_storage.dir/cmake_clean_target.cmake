file(REMOVE_RECURSE
  "libwavebatch_storage.a"
)
