#ifndef WAVEBATCH_TELEMETRY_EXPORT_H_
#define WAVEBATCH_TELEMETRY_EXPORT_H_

#include <string>

#include "telemetry/metrics.h"

namespace wavebatch::telemetry {

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers per family, then one sample
/// line per time series; histograms expand to cumulative `_bucket{le=...}`
/// series plus `_sum` and `_count`. Histogram bucket bounds are the
/// log-scale powers of two (trailing all-zero buckets are elided; the
/// mandatory `le="+Inf"` bucket always closes the family). Safe to call
/// while other threads keep recording — values are a statistical snapshot.
std::string ExportPrometheus(
    const MetricsRegistry& registry = MetricsRegistry::Default());

/// Renders the span buffer as a Chrome trace-event JSON document (the
/// `chrome://tracing` / Perfetto "traceEvents" format): one complete ("X")
/// event per span with microsecond timestamps, grouped by the recording
/// thread, carrying span/trace/request ids and the span's structured
/// attributes in "args". Cross-thread parent links (ThreadPool hand-offs)
/// additionally emit flow-event pairs ("s"/"f"), so one request renders as
/// a connected lane across worker threads. Load the output via
/// chrome://tracing "Load" or ui.perfetto.dev.
std::string ExportChromeTrace(
    const MetricsRegistry& registry = MetricsRegistry::Default());

/// Validates Prometheus text exposition: metric/label name grammar, label
/// escaping, sample value syntax, HELP/TYPE placement, and histogram
/// invariants (cumulative monotone buckets, `le="+Inf"` present and equal
/// to `_count`). Returns true when `text` parses clean; otherwise fills
/// `error` (if non-null) with the first offending line and reason. Used by
/// the format test and the `validate_prometheus` CI tool.
bool ValidatePrometheus(const std::string& text, std::string* error = nullptr);

}  // namespace wavebatch::telemetry

#endif  // WAVEBATCH_TELEMETRY_EXPORT_H_
