file(REMOVE_RECURSE
  "libwavebatch_baselines.a"
)
