#ifndef WAVEBATCH_ENGINE_EVAL_PLAN_H_
#define WAVEBATCH_ENGINE_EVAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/master_list.h"
#include "core/progressive.h"
#include "engine/apply_kernel.h"
#include "penalty/penalty.h"
#include "query/batch.h"
#include "strategy/linear_strategy.h"
#include "util/status.h"

namespace wavebatch {

/// The immutable, shareable half of a progressive batch evaluation: master
/// list, per-entry importances ι_p(ξ), and the consumption permutation of
/// every deterministic ProgressionOrder, computed once. Plans carry no
/// cursor and touch no store, so one plan can back any number of
/// EvalSessions — sequentially (a dashboard re-running the same batch) or
/// concurrently (sessions on different threads over one shared store) —
/// and can be cached across identical batches (PlanCache).
///
/// Plans own their inputs via shared_ptr: a session holding the plan keeps
/// the master list and penalty alive, closing the raw-pointer lifetime trap
/// of the legacy ProgressiveEvaluator ("list/penalty/store must outlive the
/// evaluator").
///
/// Construction fans out over util::ThreadPool::Shared() by default
/// (importances, permutation sorts, and the master-list merge); pass
/// BuildParallelism::kSerial to force the single-threaded path. Both
/// settings produce bit-identical plans — see core/master_list.h.
class EvalPlan {
 public:
  /// Rewrites `batch` under `strategy` (MasterList::Build) and plans it.
  /// `penalty` may be null for exact-only plans (kKeyOrder / kRoundRobin
  /// progressions and RunToExact work; importance-based order and bounds
  /// do not).
  static Result<std::shared_ptr<const EvalPlan>> Build(
      const QueryBatch& batch, const LinearStrategy& strategy,
      std::shared_ptr<const PenaltyFunction> penalty,
      BuildParallelism parallelism = BuildParallelism::kParallel);

  /// Plans an already-merged master list.
  static std::shared_ptr<const EvalPlan> FromMasterList(
      std::shared_ptr<const MasterList> list,
      std::shared_ptr<const PenaltyFunction> penalty,
      BuildParallelism parallelism = BuildParallelism::kParallel);

  const MasterList& list() const { return *list_; }
  std::shared_ptr<const MasterList> shared_list() const { return list_; }
  /// Null for exact-only plans.
  const PenaltyFunction* penalty() const { return penalty_.get(); }

  size_t num_queries() const { return list_->num_queries(); }
  /// Steps to exactness (= master list size).
  size_t size() const { return list_->size(); }

  bool HasImportance() const { return penalty_ != nullptr; }
  /// ι_p of master-list entry `i`. Requires HasImportance().
  double importance(size_t i) const { return importance_[i]; }
  /// Σ_ξ ι_p(ξ) over the whole master list — a fresh session's remaining
  /// importance. Requires HasImportance().
  double total_importance() const { return total_importance_; }

  /// The fused gather-apply kernel over this plan's CSR image. The returned
  /// pointers stay valid as long as this plan is alive (sessions hold the
  /// plan via shared_ptr).
  ApplyKernel kernel() const {
    return ApplyKernel::For(
        *list_, importance_.empty() ? nullptr : importance_.data());
  }

  /// The order in which a session under `order` consumes master-list entry
  /// indices. Precomputed for kBiggestB (requires HasImportance()),
  /// kRoundRobin, and kKeyOrder; kRandom depends on a seed — use
  /// RandomPermutation.
  std::span<const size_t> Permutation(ProgressionOrder order) const;

  /// The kRandom consumption order for `seed` (identity permutation through
  /// a seeded Fisher–Yates, matching the legacy evaluator step for step).
  /// The last (seed, permutation) pair is memoized behind a mutex — the
  /// plan stays logically immutable, and the common pattern of many
  /// sessions sharing one seed costs one shuffle instead of one per
  /// session. Thread-safe.
  std::vector<size_t> RandomPermutation(uint64_t seed) const;

 private:
  EvalPlan(std::shared_ptr<const MasterList> list,
           std::shared_ptr<const PenaltyFunction> penalty,
           BuildParallelism parallelism);

  std::shared_ptr<const MasterList> list_;
  std::shared_ptr<const PenaltyFunction> penalty_;

  std::vector<double> importance_;  // empty when penalty_ is null
  double total_importance_ = 0.0;

  // Entry indices in consumption order. biggest_b_ is the descending
  // (importance, index) order a max-heap pops; round_robin_ is the
  // per-query |coefficient|-descending round-robin with duplicate entries
  // collapsed onto their first appearance; key_order_ is the identity
  // (master lists are ascending by key).
  std::vector<size_t> biggest_b_;
  std::vector<size_t> round_robin_;
  std::vector<size_t> key_order_;

  // RandomPermutation memo (logical const: a cache of a pure function of
  // the immutable plan).
  mutable std::mutex random_mu_;
  mutable bool random_cached_ = false;
  mutable uint64_t random_seed_ = 0;
  mutable std::vector<size_t> random_perm_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_ENGINE_EVAL_PLAN_H_
