#include "cube/schema.h"

#include <set>

#include "gtest/gtest.h"

namespace wavebatch {
namespace {

TEST(SchemaTest, CreateValid) {
  Result<Schema> s = Schema::Create({{"lat", 64}, {"lon", 32}});
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_dims(), 2u);
  EXPECT_EQ(s->dim(0).name, "lat");
  EXPECT_EQ(s->dim(1).size, 32u);
  EXPECT_EQ(s->bits(0), 6u);
  EXPECT_EQ(s->bits(1), 5u);
  EXPECT_EQ(s->total_bits(), 11u);
  EXPECT_EQ(s->cell_count(), 2048u);
}

TEST(SchemaTest, RejectsEmpty) {
  EXPECT_FALSE(Schema::Create({}).ok());
}

TEST(SchemaTest, RejectsNonPowerOfTwo) {
  EXPECT_FALSE(Schema::Create({{"x", 3}}).ok());
  EXPECT_FALSE(Schema::Create({{"x", 0}}).ok());
  EXPECT_FALSE(Schema::Create({{"x", 1}}).ok());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  EXPECT_FALSE(Schema::Create({{"x", 4}, {"x", 8}}).ok());
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Create({{"", 4}}).ok());
}

TEST(SchemaTest, RejectsOversizedDomain) {
  // 8 dims of 2^8 = 64 bits > 62.
  std::vector<Dimension> dims;
  for (int i = 0; i < 8; ++i) {
    dims.push_back({"d" + std::to_string(i), 256});
  }
  EXPECT_FALSE(Schema::Create(dims).ok());
}

TEST(SchemaTest, UniformHelper) {
  Schema s = Schema::Uniform(3, 16);
  EXPECT_EQ(s.num_dims(), 3u);
  EXPECT_EQ(s.dim(2).name, "d2");
  EXPECT_EQ(s.cell_count(), 4096u);
}

TEST(SchemaTest, DimIndex) {
  Schema s = Schema::Uniform(3, 4);
  Result<size_t> i = s.DimIndex("d1");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(*i, 1u);
  EXPECT_FALSE(s.DimIndex("nope").ok());
}

TEST(SchemaTest, Contains) {
  Schema s = Schema::Uniform(2, 8);
  EXPECT_TRUE(s.Contains(std::vector<uint32_t>{0, 7}));
  EXPECT_FALSE(s.Contains(std::vector<uint32_t>{0, 8}));
  EXPECT_FALSE(s.Contains(std::vector<uint32_t>{0}));
}

TEST(SchemaTest, PackUnpackRoundTrip) {
  Result<Schema> s = Schema::Create({{"a", 4}, {"b", 8}, {"c", 2}});
  ASSERT_TRUE(s.ok());
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = 0; b < 8; ++b) {
      for (uint32_t c = 0; c < 2; ++c) {
        std::vector<uint32_t> coords = {a, b, c};
        const uint64_t cell = s->Pack(coords);
        EXPECT_LT(cell, s->cell_count());
        EXPECT_EQ(s->Unpack(cell), coords);
      }
    }
  }
}

TEST(SchemaTest, PackIsRowMajorDim0Slowest) {
  Result<Schema> s = Schema::Create({{"a", 4}, {"b", 8}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->Pack(std::vector<uint32_t>{0, 0}), 0u);
  EXPECT_EQ(s->Pack(std::vector<uint32_t>{0, 1}), 1u);
  EXPECT_EQ(s->Pack(std::vector<uint32_t>{1, 0}), 8u);
  EXPECT_EQ(s->Pack(std::vector<uint32_t>{3, 7}), 31u);
}

TEST(SchemaTest, PackDistinct) {
  Schema s = Schema::Uniform(2, 4);
  std::set<uint64_t> cells;
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = 0; b < 4; ++b) {
      cells.insert(s.Pack(std::vector<uint32_t>{a, b}));
    }
  }
  EXPECT_EQ(cells.size(), 16u);
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(Schema::Uniform(2, 4) == Schema::Uniform(2, 4));
  EXPECT_FALSE(Schema::Uniform(2, 4) == Schema::Uniform(2, 8));
  EXPECT_FALSE(Schema::Uniform(2, 4) == Schema::Uniform(3, 4));
}

TEST(SchemaTest, ToString) {
  Result<Schema> s = Schema::Create({{"lat", 64}, {"lon", 32}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), "lat:64 x lon:32");
}

}  // namespace
}  // namespace wavebatch
