#include "penalty/sse.h"

#include "util/check.h"
#include "util/fingerprint.h"

namespace wavebatch {

double SsePenalty::Apply(std::span<const double> e) const {
  double acc = 0.0;
  for (double v : e) acc += v * v;
  return acc;
}

std::string SsePenalty::Fingerprint() const {
  std::string fp;
  fingerprint::AppendString(fp, name());
  return fp;
}

WeightedSsePenalty::WeightedSsePenalty(std::vector<double> weights)
    : weights_(std::move(weights)) {
  for (double w : weights_) {
    WB_CHECK_GE(w, 0.0) << "penalty weights must be non-negative";
  }
}

double WeightedSsePenalty::Apply(std::span<const double> e) const {
  WB_CHECK_EQ(e.size(), weights_.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i] * e[i] * e[i];
  }
  return acc;
}

std::string WeightedSsePenalty::Fingerprint() const {
  std::string fp;
  fingerprint::AppendString(fp, name());
  fingerprint::AppendU64(fp, weights_.size());
  for (double w : weights_) fingerprint::AppendF64(fp, w);
  return fp;
}

WeightedSsePenalty CursoredSsePenalty(size_t num_queries,
                                      std::span<const size_t> high_priority,
                                      double priority_weight) {
  WB_CHECK_GE(priority_weight, 0.0);
  std::vector<double> weights(num_queries, 1.0);
  for (size_t i : high_priority) {
    WB_CHECK_LT(i, num_queries);
    weights[i] = priority_weight;
  }
  return WeightedSsePenalty(std::move(weights));
}

}  // namespace wavebatch
