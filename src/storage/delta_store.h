#ifndef WAVEBATCH_STORAGE_DELTA_STORE_H_
#define WAVEBATCH_STORAGE_DELTA_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "wavelet/sparse_vec.h"

namespace wavebatch {

/// One sealed, immutable slice of the delta plane: the consolidated
/// per-coefficient adds accumulated by streaming ingestion since the base
/// store was last merged. A reader holding an overlay sees a frozen value
/// for every key — `base value + ValueAt(key)` is the versioned plane's
/// read equation (SnapshotStore applies it on the counted fetch path).
///
/// Consolidation is per key: however many tuple deltas touched a key, the
/// overlay holds ONE summed add for it, so applying the overlay costs one
/// floating-point addition per fetched key, and folding it into the base
/// store (the merge) is exactly that same single addition — which is why a
/// merge is bitwise invisible to readers (versioned_store_test proves it).
///
/// Exact zeros are kept, not dropped: a key whose adds cancelled to 0.0
/// still records "this key was written", and `base + 0.0` is not a bitwise
/// no-op for a -0.0 base value. Keeping them makes the plane a
/// deterministic function of the ingest log alone.
struct DeltaOverlay {
  std::unordered_map<uint64_t, double> adds;
  /// Ingest() calls consolidated into this overlay (tuples, for the
  /// one-tuple-per-ingest caller).
  uint64_t ingests = 0;

  /// The summed add for `key` (0 if never written).
  double ValueAt(uint64_t key) const {
    const auto it = adds.find(key);
    return it == adds.end() ? 0.0 : it->second;
  }

  size_t size() const { return adds.size(); }
  bool empty() const { return adds.empty(); }
};

/// The mutable in-memory sparse overlay of the versioned coefficient
/// plane: streaming writes (sparse coefficient deltas from
/// LinearStrategy::TransformUpdate) land here, consolidated per key, until
/// a background merge folds them into the base store.
///
/// DeltaStore is deliberately NOT thread-safe — it is the write-side state
/// of VersionedStore, which serializes all access under its writer mutex.
/// Readers never touch a DeltaStore: they read sealed DeltaOverlay
/// snapshots, which are immutable copies taken by Seal().
class DeltaStore {
 public:
  DeltaStore() = default;

  /// Consolidates one sparse delta (one tuple insertion, typically) into
  /// the overlay: adds_[key] += value per entry, in entry order.
  void Apply(const SparseVec& delta);

  /// Single-entry Apply (the CoefficientStore::Add path).
  void ApplyOne(uint64_t key, double value);

  /// Immutable snapshot of the current contents, or null when empty (the
  /// "no overlay" fast path reads the base store untouched). When `under`
  /// is non-null the snapshot composes on top of it: a copy of `under`'s
  /// adds with this store's adds folded in — the view readers need while a
  /// merge is folding `under` into the base but has not yet swapped it in.
  std::shared_ptr<const DeltaOverlay> Seal(
      const DeltaOverlay* under = nullptr) const;

  /// Drops all accumulated adds (the merge took ownership of a sealed
  /// copy). The ingest counter keeps running.
  void Clear();

  /// Distinct keys currently written.
  size_t size() const { return adds_.size(); }
  bool empty() const { return adds_.empty(); }
  /// Apply() calls absorbed since construction (never reset).
  uint64_t ingests() const { return ingests_; }
  /// Sparse entries absorbed since construction (never reset).
  uint64_t entries_applied() const { return entries_applied_; }

  const std::unordered_map<uint64_t, double>& adds() const { return adds_; }

 private:
  std::unordered_map<uint64_t, double> adds_;
  uint64_t ingests_ = 0;
  uint64_t entries_applied_ = 0;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_DELTA_STORE_H_
