#ifndef WAVEBATCH_UTIL_CHECK_H_
#define WAVEBATCH_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace wavebatch {
namespace internal_check {

/// Accumulates a fatal-error message and aborts the process when destroyed.
/// Used only via the WB_CHECK family below; programmer errors (violated
/// invariants) are not recoverable conditions, so they terminate.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << "WB_CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows streamed operands when the check passes.
struct CheckVoidify {
  void operator&(const CheckFailure&) {}
};

}  // namespace internal_check
}  // namespace wavebatch

/// Aborts with a diagnostic when `cond` is false. Additional context can be
/// streamed: `WB_CHECK(n > 0) << "n=" << n;`
#define WB_CHECK(cond)                            \
  (cond) ? (void)0                                \
         : ::wavebatch::internal_check::CheckVoidify() & \
               ::wavebatch::internal_check::CheckFailure(__FILE__, __LINE__, #cond)

#define WB_CHECK_EQ(a, b) WB_CHECK((a) == (b))
#define WB_CHECK_NE(a, b) WB_CHECK((a) != (b))
#define WB_CHECK_LT(a, b) WB_CHECK((a) < (b))
#define WB_CHECK_LE(a, b) WB_CHECK((a) <= (b))
#define WB_CHECK_GT(a, b) WB_CHECK((a) > (b))
#define WB_CHECK_GE(a, b) WB_CHECK((a) >= (b))

/// Like WB_CHECK but compiled out in NDEBUG builds; use on hot paths.
#ifdef NDEBUG
#define WB_DCHECK(cond) WB_CHECK(true)
#else
#define WB_DCHECK(cond) WB_CHECK(cond)
#endif

#endif  // WAVEBATCH_UTIL_CHECK_H_
