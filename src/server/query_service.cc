#include "server/query_service.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "storage/versioned_store.h"
#include "telemetry/span.h"
#include "util/check.h"
#include "util/fingerprint.h"

namespace wavebatch::server {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

}  // namespace

QueryService::QueryService(std::shared_ptr<const CoefficientStore> store,
                           std::shared_ptr<const LinearStrategy> strategy,
                           QueryServiceOptions options)
    : root_store_(std::move(store)),
      strategy_(std::move(strategy)),
      options_(std::move(options)) {
  WB_CHECK(root_store_ != nullptr);
  WB_CHECK(strategy_ != nullptr);
  WB_CHECK_GT(options_.max_queue_depth, 0u);
  WB_CHECK_GT(options_.max_live_sessions, 0u);
  WB_CHECK_GT(options_.default_quantum, 0u);
  plan_cache_ = options_.plan_cache != nullptr
                    ? options_.plan_cache
                    : std::make_shared<PlanCache>(options_.plan_cache_capacity);
  auto& registry = telemetry::MetricsRegistry::Default();
  queue_depth_gauge_ =
      registry.GetGauge("wavebatch_server_admission_queue_depth", {},
                       "Requests admitted but not yet live.");
  live_sessions_gauge_ =
      registry.GetGauge("wavebatch_server_live_sessions", {},
                       "Progressive sessions currently being served.");
  requests_ = registry.GetCounter("wavebatch_server_requests_total", {},
                                  "Requests offered to Submit().");
  sheds_ = registry.GetCounter("wavebatch_server_sheds_total", {},
                               "Requests shed by admission backpressure.");
  completed_ = registry.GetCounter("wavebatch_server_completed_total", {},
                                   "Requests completed (exact, bound met, "
                                   "or deadline-expired).");
  deadline_expired_ =
      registry.GetCounter("wavebatch_server_deadline_expired_total", {},
                          "Requests completed approximate at their deadline.");
  failed_ = registry.GetCounter("wavebatch_server_failed_total", {},
                                "Requests completed with a non-OK status.");
  latency_us_ =
      registry.GetHistogram("wavebatch_server_request_latency_us", {},
                            "Admission-to-completion latency, microseconds.");
  std::lock_guard<std::mutex> lock(mu_);
  RepinLocked();
}

QueryService::~QueryService() {
  Stop();
  // Fail everything still queued or live — every admitted request gets its
  // callback exactly once.
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    for (Pending& p : pending_) {
      QueryResponse response;
      response.status = Status::Unavailable("query service shut down");
      response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
          now - p.admitted_at);
      callbacks.push_back(
          [done = std::move(p.done), r = std::move(response)]() mutable {
            done(std::move(r));
          });
    }
    pending_.clear();
    queue_depth_gauge_->Set(0.0);
    while (!live_.empty()) {
      callbacks.push_back(FinalizeLocked(
          live_.size() - 1, Status::Unavailable("query service shut down"),
          /*deadline_expired=*/false, now));
    }
  }
  for (auto& cb : callbacks) cb();
}

void QueryService::RepinLocked() {
  std::shared_ptr<const CoefficientStore> pinned = root_store_->PinVersion();
  pinned_ = pinned != nullptr ? std::move(pinned) : root_store_;
  // Versioned planes pin SnapshotStores, which carry their published epoch;
  // static stores read as epoch 0. Spans and /statusz report this so a
  // trace shows which data version served each request.
  const auto* snapshot = dynamic_cast<const SnapshotStore*>(pinned_.get());
  pinned_epoch_ = snapshot != nullptr ? snapshot->epoch() : 0;
}

uint64_t QueryService::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_epoch_;
}

std::vector<QueryService::GroupStatus> QueryService::GroupStatuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<GroupStatus> out;
  out.reserve(groups_.size());
  for (const auto& [key, group] : groups_) {
    GroupStatus status;
    status.generation = group->generation;
    status.epoch = group->epoch;
    status.members = group->members;
    status.cache_entries = group->cache->size();
    status.cache_hits = group->cache->hits();
    status.cache_misses = group->cache->misses();
    status.k_sum_abs = group->k_sum_abs;
    out.push_back(status);
  }
  // groups_ is a hash map; give callers a stable order.
  std::sort(out.begin(), out.end(),
            [](const GroupStatus& a, const GroupStatus& b) {
              return a.generation != b.generation
                         ? a.generation < b.generation
                         : a.members > b.members;
            });
  return out;
}

std::vector<QueryService::TimelineRecord> QueryService::RecentTimelines()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {recent_timelines_.begin(), recent_timelines_.end()};
}

void QueryService::RefreshEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  RepinLocked();
  ++generation_;
}

uint64_t QueryService::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

uint64_t QueryService::sheds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return local_sheds_;
}

uint64_t QueryService::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return local_completed_;
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

size_t QueryService::live_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

uint64_t QueryService::shared_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = retired_hits_;
  for (const auto& [key, group] : groups_) total += group->cache->hits();
  return total;
}

uint64_t QueryService::shared_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = retired_misses_;
  for (const auto& [key, group] : groups_) total += group->cache->misses();
  return total;
}

Status QueryService::Submit(QueryRequest request, ResponseCallback done) {
  WB_CHECK(done != nullptr);
  requests_->Add();
  // Mint the trace identity before taking the lock: NewTraceId() is one
  // relaxed atomic increment, and shed requests simply never use theirs.
  telemetry::TraceContext trace;
  if (telemetry::Enabled()) {
    trace.trace_id = telemetry::NewTraceId();
    trace.request_id = trace.trace_id;
  }
  size_t depth_after = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.size() >= options_.max_queue_depth) {
      sheds_->Add();
      ++local_sheds_;
      return Status::Unavailable("admission queue full");
    }
    if (options_.pool_queue_shed_threshold > 0.0) {
      // Cross-subsystem backpressure: the process thread pools (merges,
      // parallel plan builds) report queued work through this gauge; a
      // saturated pool means new sessions would only add to the backlog.
      telemetry::Gauge* pool_depth =
          telemetry::MetricsRegistry::Default().GetGauge(
              "wavebatch_thread_pool_queue_depth");
      if (pool_depth->Value() > options_.pool_queue_shed_threshold) {
        sheds_->Add();
        ++local_sheds_;
        return Status::Unavailable("thread pools saturated");
      }
    }
    pending_.push_back(Pending{std::move(request), std::move(done),
                               std::chrono::steady_clock::now(), trace});
    depth_after = pending_.size();
    queue_depth_gauge_->Set(static_cast<double>(depth_after));
  }
  if (trace.active()) {
    // The trace's root marker: a zero-duration span stamped with the fresh
    // ids, so /tracez shows when the request entered the queue and how deep
    // the queue was. Recorded outside mu_ (span_mu_ must never nest inside
    // the service lock's critical sections on the hot path).
    telemetry::ScopedTraceContext guard(trace);
    const auto now = std::chrono::steady_clock::now();
    telemetry::MetricsRegistry::Default().RecordSpan(
        "request_submit", now, now,
        {telemetry::SpanAttr{"queue_depth", static_cast<double>(depth_after)}});
  }
  cv_.notify_one();
  return Status::OK();
}

std::string QueryService::GroupKeyLocked(const QueryRequest& request) const {
  std::string key;
  fingerprint::AppendString(key, strategy_->name());
  if (request.penalty == nullptr) {
    fingerprint::AppendU64(key, 0);
  } else {
    fingerprint::AppendString(key, request.penalty->Fingerprint());
  }
  const Schema& schema = request.batch.schema();
  fingerprint::AppendU64(key, schema.num_dims());
  for (const Dimension& d : schema.dims()) {
    key += d.name;
    key += '\0';
    fingerprint::AppendU64(key, d.size);
  }
  fingerprint::AppendU64(key, generation_);
  return key;
}

std::shared_ptr<QueryService::Group> QueryService::GetGroupLocked(
    const QueryRequest& request) {
  std::string key = GroupKeyLocked(request);
  auto it = groups_.find(key);
  if (it != groups_.end()) return it->second;
  auto group = std::make_shared<Group>();
  group->key = key;
  group->cache = std::make_shared<SharedFetchCache>();
  group->store = std::make_shared<SharedFetchStore>(pinned_, group->cache);
  group->k_sum_abs = pinned_->SumAbs();
  group->generation = generation_;
  group->epoch = pinned_epoch_;
  groups_[std::move(key)] = group;
  return group;
}

void QueryService::AdmitLocked(std::vector<std::function<void()>>* finished) {
  const auto now = std::chrono::steady_clock::now();
  while (!pending_.empty() && live_.size() < options_.max_live_sessions) {
    Pending pending = std::move(pending_.front());
    pending_.erase(pending_.begin());
    queue_depth_gauge_->Set(static_cast<double>(pending_.size()));

    auto active = std::make_unique<Active>(std::move(pending.request),
                                           std::move(pending.done));
    active->admitted_at = pending.admitted_at;
    active->deadline_at =
        active->request.deadline.count() > 0
            ? pending.admitted_at + active->request.deadline
            : kNoDeadline;
    active->quantum = active->request.quantum > 0 ? active->request.quantum
                                                  : options_.default_quantum;
    active->generation = generation_;
    active->trace = pending.trace;
    active->timeline =
        telemetry::ConvergenceTimeline(options_.timeline_capacity);

    // Plans are store-free (a transform of the queries alone), so they are
    // cached at epoch 0 and shared across generations. The lookup (and any
    // build it triggers) runs under the request's trace so plan_build /
    // plan_cache_lookup spans attribute to it.
    std::optional<telemetry::ScopedTraceContext> trace_guard;
    if (active->trace.active()) trace_guard.emplace(active->trace);
    Result<std::shared_ptr<const EvalPlan>> plan = plan_cache_->GetOrBuild(
        active->request.batch, *strategy_, active->request.penalty,
        /*data_epoch=*/0);
    trace_guard.reset();
    if (!plan.ok()) {
      QueryResponse response;
      response.status = plan.status();
      response.request_id = active->trace.request_id;
      response.trace_id = active->trace.trace_id;
      response.generation = generation_;
      response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
          now - active->admitted_at);
      failed_->Add();
      finished->push_back(
          [done = std::move(active->done), r = std::move(response)]() mutable {
            done(std::move(r));
          });
      continue;
    }

    active->group = GetGroupLocked(active->request);
    ++active->group->members;
    EvalSession::Options session_options;
    session_options.order = active->request.penalty != nullptr
                                ? ProgressionOrder::kBiggestB
                                : ProgressionOrder::kKeyOrder;
    session_options.fault_policy = active->request.fault_policy;
    active->session = std::make_unique<EvalSession>(
        plan.value(), active->group->store, session_options);
    live_.push_back(std::move(active));
    live_sessions_gauge_->Set(static_cast<double>(live_.size()));
  }
}

bool QueryService::IsFinishedLocked(
    const Active& active, std::chrono::steady_clock::time_point now) const {
  if (active.failed) return true;
  if (active.session->Done()) return true;
  if (now >= active.deadline_at) return true;
  if (active.request.target_bound > 0.0 &&
      active.session->plan().HasImportance() &&
      active.session->WorstCaseBound(active.group->k_sum_abs) <=
          active.request.target_bound) {
    return true;
  }
  return false;
}

QueryService::Active* QueryService::PickLocked(
    std::chrono::steady_clock::time_point now) {
  // Least deadline slack first; among equals, the session whose next
  // quantum buys the most Theorem-1 bound reduction per retrieval (its next
  // coefficient's importance — the progression is importance-sorted, so
  // the head is the quantum's densest unit of progress).
  Active* best = nullptr;
  double best_slack = 0.0;
  double best_marginal = 0.0;
  for (auto& active : live_) {
    if (active->busy || IsFinishedLocked(*active, now)) continue;
    const double slack =
        active->deadline_at == kNoDeadline
            ? std::numeric_limits<double>::infinity()
            : std::chrono::duration_cast<std::chrono::duration<double>>(
                  active->deadline_at - now)
                  .count();
    const double marginal = active->session->plan().HasImportance()
                                ? active->session->NextImportance()
                                : 0.0;
    if (best == nullptr || slack < best_slack ||
        (slack == best_slack && marginal > best_marginal)) {
      best = active.get();
      best_slack = slack;
      best_marginal = marginal;
    }
  }
  return best;
}

void QueryService::GatherGroupKeysLocked(
    const Active& active, std::vector<uint64_t>* out,
    std::vector<telemetry::TraceContext>* siblings) {
  out->clear();
  if (siblings != nullptr) siblings->clear();
  active.session->PeekUpcomingKeys(active.quantum, out);
  for (const auto& other : live_) {
    if (other.get() == &active || other->group != active.group) continue;
    // Busy siblings are mid-quantum on another worker; their cursor is
    // theirs alone until they put it down.
    if (other->busy || other->failed) continue;
    const size_t appended =
        other->session->PeekUpcomingKeys(other->quantum, out);
    // Merged-batch attribution: remember whose keys rode along so the
    // quantum can mark those requests' traces as advanced by this fetch.
    if (siblings != nullptr && appended > 0 && other->trace.active()) {
      siblings->push_back(other->trace);
    }
  }
}

void QueryService::SampleTimeline(Active& active, bool force) const {
  telemetry::TimelinePoint point;
  point.steps = active.session->StepsTaken();
  point.retrievals = active.session->io().retrievals;
  const std::vector<double>& estimates = active.session->Estimates();
  point.estimate = estimates.empty() ? 0.0 : estimates[0];
  if (active.session->plan().HasImportance()) {
    point.bound = active.session->WorstCaseBound(active.group->k_sum_abs);
  }
  point.skipped_importance = active.session->SkippedImportance();
  point.elapsed_us =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - active.admitted_at)
          .count();
  if (force) {
    active.timeline.ForceSample(point);
  } else {
    active.timeline.Sample(point);
  }
}

void QueryService::StepQuantum(Active& active, std::vector<uint64_t>* keys,
                               std::vector<telemetry::TraceContext>* siblings) {
  // The whole quantum — the merged prefetch and this session's StepBatch —
  // runs under the request's TraceContext, so every backend span it causes
  // (store_fetch_batch, shard_subbatch) attributes to this request.
  const bool traced = active.trace.active() && telemetry::Enabled();
  std::optional<telemetry::ScopedTraceContext> trace_guard;
  std::optional<telemetry::ScopedSpan> quantum_span;
  if (traced) {
    trace_guard.emplace(active.trace);
    quantum_span.emplace("request_quantum");
    quantum_span->AddAttr("union_keys", static_cast<double>(keys->size()));
    quantum_span->AddAttr("siblings",
                          static_cast<double>(siblings->size()));
    quantum_span->AddAttr("generation",
                          static_cast<double>(active.generation));
    quantum_span->AddAttr("epoch", static_cast<double>(active.group->epoch));
  }
  // The cross-session fetch: the union of the group's upcoming needs goes
  // to the backend as one batch (cold keys only — the cache drops warm and
  // duplicate keys), then this session's own StepBatch runs warm. Prefetch
  // is best-effort; a faulty batch is retried per key inside and whatever
  // stays unavailable surfaces through the session's own FaultPolicy.
  (void)active.group->store->Prefetch(*keys);
  if (traced && !siblings->empty()) {
    // Sibling attribution: the merged batch warmed these requests' upcoming
    // keys too. A zero-duration marker in each sibling's trace names the
    // request whose quantum paid for the fetch, so a trace shows both sides
    // of every cross-session share.
    const auto now = std::chrono::steady_clock::now();
    const double by_request = static_cast<double>(active.trace.request_id);
    for (const telemetry::TraceContext& sibling : *siblings) {
      telemetry::ScopedTraceContext sibling_guard(sibling);
      telemetry::MetricsRegistry::Default().RecordSpan(
          "shared_prefetch_advance", now, now,
          {telemetry::SpanAttr{"by_request", by_request}});
    }
  }
  Result<size_t> stepped = active.session->StepBatch(active.quantum);
  if (!stepped.ok()) {
    // kFail: the session is untouched and resumable, but the serving
    // contract is one answer per request — complete with the fault and the
    // progressive estimates gathered so far.
    active.failure = stepped.status();
    active.failed = true;
  }
  if (traced) SampleTimeline(active, /*force=*/false);
}

std::function<void()> QueryService::FinalizeLocked(
    size_t live_index, Status status, bool deadline_expired,
    std::chrono::steady_clock::time_point now) {
  std::unique_ptr<Active> active = std::move(live_[live_index]);
  live_.erase(live_.begin() + static_cast<ptrdiff_t>(live_index));
  live_sessions_gauge_->Set(static_cast<double>(live_.size()));

  // Close the convergence record with the request's final state — the
  // curve's last point is the answer actually returned.
  if (active->trace.active() && telemetry::Enabled()) {
    SampleTimeline(*active, /*force=*/true);
  }

  QueryResponse response;
  response.status = std::move(status);
  response.estimates = active->session->Estimates();
  response.steps_taken = active->session->StepsTaken();
  response.total_steps = active->session->TotalSteps();
  response.skipped_coefficients = active->session->SkippedCoefficients();
  response.io = active->session->io();
  response.exact = active->session->Done() &&
                   active->session->SkippedCoefficients() == 0;
  response.deadline_expired = deadline_expired;
  response.generation = active->generation;
  if (active->session->plan().HasImportance()) {
    response.worst_case_bound =
        active->session->WorstCaseBound(active->group->k_sum_abs);
  }
  response.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      now - active->admitted_at);
  response.request_id = active->trace.request_id;
  response.trace_id = active->trace.trace_id;

  if (!active->timeline.empty()) {
    TimelineRecord record;
    record.request_id = active->trace.request_id;
    record.trace_id = active->trace.trace_id;
    record.generation = active->generation;
    record.ok = response.status.ok();
    record.exact = response.exact;
    record.deadline_expired = deadline_expired;
    record.points = active->timeline.TakePoints();
    response.timeline = record.points;
    recent_timelines_.push_back(std::move(record));
    while (recent_timelines_.size() > options_.recent_timelines) {
      recent_timelines_.pop_front();
    }
  }

  latency_us_->Observe(
      static_cast<uint64_t>(std::max<int64_t>(0, response.latency.count())));
  completed_->Add();
  ++local_completed_;
  if (deadline_expired) deadline_expired_->Add();
  if (!response.status.ok()) failed_->Add();

  // Retire the group when its last member leaves: the epoch's cache has
  // served its purpose, and holding it would pin the snapshot (and its
  // memory) forever. The ledger folds into the retired totals first.
  if (--active->group->members == 0) {
    retired_hits_ += active->group->cache->hits();
    retired_misses_ += active->group->cache->misses();
    groups_.erase(active->group->key);
  }

  return [done = std::move(active->done), r = std::move(response)]() mutable {
    done(std::move(r));
  };
}

void QueryService::RunUntilIdle() {
  std::vector<uint64_t> key_scratch;
  std::vector<telemetry::TraceContext> sibling_scratch;
  for (;;) {
    std::vector<std::function<void()>> callbacks;
    Active* picked = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      AdmitLocked(&callbacks);
      const auto now = std::chrono::steady_clock::now();
      // Finalize everything already complete (deadline may expire while a
      // session waits its turn; target bounds are met mid-stream).
      for (size_t i = live_.size(); i-- > 0;) {
        Active& active = *live_[i];
        if (active.busy || !IsFinishedLocked(active, now)) continue;
        const bool expired = !active.failed && !active.session->Done() &&
                             now >= active.deadline_at &&
                             !(active.request.target_bound > 0.0 &&
                               active.session->plan().HasImportance() &&
                               active.session->WorstCaseBound(
                                   active.group->k_sum_abs) <=
                                   active.request.target_bound);
        callbacks.push_back(FinalizeLocked(
            i, active.failed ? active.failure : Status::OK(), expired, now));
      }
      picked = PickLocked(now);
      if (picked != nullptr) {
        picked->busy = true;
        GatherGroupKeysLocked(*picked, &key_scratch, &sibling_scratch);
      }
    }
    for (auto& cb : callbacks) cb();
    if (picked == nullptr) {
      std::unique_lock<std::mutex> lock(mu_);
      const bool busy_elsewhere =
          std::any_of(live_.begin(), live_.end(),
                      [](const auto& a) { return a->busy; });
      if (pending_.empty() && !busy_elsewhere) return;
      // Workers hold every runnable session (or the queue drains into slots
      // they will free): yield briefly and re-check.
      cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    StepQuantum(*picked, &key_scratch, &sibling_scratch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      picked->busy = false;
    }
    cv_.notify_all();
  }
}

void QueryService::WorkerLoop() {
  std::vector<uint64_t> key_scratch;
  std::vector<telemetry::TraceContext> sibling_scratch;
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    std::vector<std::function<void()>> callbacks;
    AdmitLocked(&callbacks);
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = live_.size(); i-- > 0;) {
      Active& active = *live_[i];
      if (active.busy || !IsFinishedLocked(active, now)) continue;
      const bool expired = !active.failed && !active.session->Done() &&
                           now >= active.deadline_at &&
                           !(active.request.target_bound > 0.0 &&
                             active.session->plan().HasImportance() &&
                             active.session->WorstCaseBound(
                                 active.group->k_sum_abs) <=
                                 active.request.target_bound);
      callbacks.push_back(FinalizeLocked(
          i, active.failed ? active.failure : Status::OK(), expired, now));
    }
    Active* picked = PickLocked(now);
    if (picked == nullptr && callbacks.empty()) {
      // Nothing runnable: if sessions are only waiting on their deadlines
      // (none here — sessions always make progress until complete), or the
      // queue is empty, sleep until new work or a sibling frees capacity.
      cv_.wait(lock, [this] {
        return stopping_ || !pending_.empty() ||
               std::any_of(live_.begin(), live_.end(),
                           [](const auto& a) { return !a->busy; });
      });
      continue;
    }
    if (picked != nullptr) {
      picked->busy = true;
      GatherGroupKeysLocked(*picked, &key_scratch, &sibling_scratch);
    }
    lock.unlock();
    for (auto& cb : callbacks) cb();
    if (picked != nullptr) {
      StepQuantum(*picked, &key_scratch, &sibling_scratch);
    }
    lock.lock();
    if (picked != nullptr) picked->busy = false;
    cv_.notify_all();
  }
}

void QueryService::Start(size_t num_threads) {
  WB_CHECK_GT(num_threads, 0u);
  std::lock_guard<std::mutex> lock(mu_);
  if (!workers_.empty()) return;
  stopping_ = false;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void QueryService::Stop() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_.empty()) return;
    stopping_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& t : workers) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = false;
}

}  // namespace wavebatch::server
