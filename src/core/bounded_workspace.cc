#include "core/bounded_workspace.h"

#include <algorithm>

#include "core/exact.h"
#include "util/check.h"

namespace wavebatch {

BoundedWorkspaceResult EvaluateWithBoundedWorkspace(
    const QueryBatch& batch, const LinearStrategy& strategy,
    const CoefficientStore& store, uint64_t max_workspace_coefficients) {
  WB_CHECK_GT(max_workspace_coefficients, 0u);
  BoundedWorkspaceResult out;
  out.results.resize(batch.size(), 0.0);

  std::vector<SparseVec> group;           // materialized coefficient lists
  std::vector<size_t> group_members;      // their batch indices
  uint64_t group_coefficients = 0;

  auto flush = [&] {
    if (group.empty()) return;
    MasterList list = MasterList::FromQueryVectors(group);
    // EvaluateShared issues chunked FetchBatch calls, so each group's
    // retrieval is batch-native; the workspace bound still holds because
    // only this group's coefficient lists are materialized.
    ExactBatchResult res = EvaluateShared(list, store);
    for (size_t g = 0; g < group_members.size(); ++g) {
      out.results[group_members[g]] = res.results[g];
    }
    out.retrievals += res.retrievals;
    out.peak_workspace = std::max(out.peak_workspace, group_coefficients);
    ++out.num_groups;
    group.clear();
    group_members.clear();
    group_coefficients = 0;
  };

  for (size_t qi = 0; qi < batch.size(); ++qi) {
    Result<SparseVec> coeffs = strategy.TransformQuery(batch.query(qi));
    WB_CHECK(coeffs.ok()) << coeffs.status();
    const uint64_t nnz = coeffs->size();
    if (!group.empty() &&
        group_coefficients + nnz > max_workspace_coefficients) {
      flush();
    }
    group_coefficients += nnz;
    group.push_back(std::move(coeffs).value());
    group_members.push_back(qi);
  }
  flush();
  return out;
}

}  // namespace wavebatch
