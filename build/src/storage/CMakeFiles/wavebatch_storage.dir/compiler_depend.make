# Empty compiler generated dependencies file for wavebatch_storage.
# This may be replaced when dependencies are built.
