#include "wavelet/dwt_nd.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"
#include "wavelet/dwt1d.h"

namespace wavebatch {
namespace {

DenseCube RandomCube(const Schema& schema, uint64_t seed) {
  DenseCube cube(schema);
  Rng rng(seed);
  for (uint64_t i = 0; i < cube.size(); ++i) cube[i] = rng.Gaussian();
  return cube;
}

class DwtNdTest : public ::testing::TestWithParam<WaveletKind> {
 protected:
  const WaveletFilter& filter() const {
    return WaveletFilter::Get(GetParam());
  }
};

TEST_P(DwtNdTest, RoundTrip2D) {
  Schema schema = Schema::Uniform(2, 16);
  DenseCube cube = RandomCube(schema, 3);
  DenseCube copy = cube;
  ForwardDwtNd(copy, filter());
  InverseDwtNd(copy, filter());
  for (uint64_t i = 0; i < cube.size(); ++i) {
    EXPECT_NEAR(copy[i], cube[i], 1e-9);
  }
}

TEST_P(DwtNdTest, RoundTrip3DMixedSizes) {
  Result<Schema> schema = Schema::Create({{"a", 8}, {"b", 4}, {"c", 16}});
  ASSERT_TRUE(schema.ok());
  DenseCube cube = RandomCube(*schema, 5);
  DenseCube copy = cube;
  ForwardDwtNd(copy, filter());
  InverseDwtNd(copy, filter());
  for (uint64_t i = 0; i < cube.size(); ++i) {
    EXPECT_NEAR(copy[i], cube[i], 1e-9);
  }
}

TEST_P(DwtNdTest, PreservesInnerProducts) {
  Schema schema = Schema::Uniform(3, 8);
  DenseCube a = RandomCube(schema, 11);
  DenseCube b = RandomCube(schema, 12);
  const double dot = a.Dot(b);
  ForwardDwtNd(a, filter());
  ForwardDwtNd(b, filter());
  EXPECT_NEAR(a.Dot(b), dot, 1e-8 * std::abs(dot) + 1e-8);
}

TEST_P(DwtNdTest, SeparableCubeFactorsIntoTensorProduct) {
  // For f[x,y] = u[x]·v[y], the standard transform satisfies
  // f̂[i,j] = û[i]·v̂[j] — the property the sparse query rewrite relies on.
  const size_t n = 16;
  Schema schema = Schema::Uniform(2, n);
  Rng rng(21);
  std::vector<double> u(n), v(n);
  for (auto& x : u) x = rng.Gaussian();
  for (auto& x : v) x = rng.Gaussian();
  DenseCube cube(schema);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      cube.at(std::vector<uint32_t>{static_cast<uint32_t>(i),
                                    static_cast<uint32_t>(j)}) = u[i] * v[j];
    }
  }
  ForwardDwtNd(cube, filter());
  std::vector<double> uh = u, vh = v;
  ForwardDwt1D(uh, filter());
  ForwardDwt1D(vh, filter());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(cube.at(std::vector<uint32_t>{static_cast<uint32_t>(i),
                                                static_cast<uint32_t>(j)}),
                  uh[i] * vh[j], 1e-9);
    }
  }
}

TEST_P(DwtNdTest, ConstantCubeSingleCoefficient) {
  Schema schema = Schema::Uniform(3, 4);
  DenseCube cube(schema);
  for (uint64_t i = 0; i < cube.size(); ++i) cube[i] = 2.0;
  ForwardDwtNd(cube, filter());
  EXPECT_NEAR(cube[0], 2.0 * std::sqrt(static_cast<double>(cube.size())),
              1e-9);
  for (uint64_t i = 1; i < cube.size(); ++i) {
    EXPECT_NEAR(cube[i], 0.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFilters, DwtNdTest,
                         ::testing::Values(WaveletKind::kHaar,
                                           WaveletKind::kDb4,
                                           WaveletKind::kDb6,
                                           WaveletKind::kDb8));

}  // namespace
}  // namespace wavebatch
