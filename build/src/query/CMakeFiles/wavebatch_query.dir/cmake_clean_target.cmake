file(REMOVE_RECURSE
  "libwavebatch_query.a"
)
