#include "storage/sharded_store.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <utility>

#include "telemetry/span.h"
#include "util/check.h"

namespace wavebatch {

ShardedStore::ShardedStore(
    std::vector<std::unique_ptr<CoefficientStore>> shards, KeyRouter router,
    ShardedStoreOptions options)
    : router_(std::move(router)),
      shards_(std::move(shards)),
      options_(options) {
  WB_CHECK(!shards_.empty());
  WB_CHECK_EQ(shards_.size(), router_.num_shards());
  for (const auto& shard : shards_) WB_CHECK(shard != nullptr);
  shard_counters_ = std::make_unique<ShardCounters[]>(shards_.size());
  if (options_.threads_per_shard > 0) {
    pools_.reserve(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      pools_.push_back(
          std::make_unique<ThreadPool>(options_.threads_per_shard));
    }
  }

  auto& registry = telemetry::MetricsRegistry::Default();
  const std::string store = name();
  shard_keys_metric_.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_keys_metric_.push_back(registry.GetCounter(
        "wavebatch_sharded_shard_keys_total",
        {{"store", store}, {"shard", std::to_string(s)}},
        "Counted keys served by this shard's backend (cold path)."));
  }
  const std::string tier_help = "Counted keys served, split by tier.";
  hot_keys_metric_ =
      registry.GetCounter("wavebatch_sharded_tier_keys_total",
                          {{"store", store}, {"tier", "hot"}}, tier_help);
  cold_keys_metric_ =
      registry.GetCounter("wavebatch_sharded_tier_keys_total",
                          {{"store", store}, {"tier", "cold"}}, tier_help);
  subbatches_metric_ = registry.GetCounter(
      "wavebatch_sharded_subbatches_total", {{"store", store}},
      "Per-shard sub-batches issued by batch scatter-gather.");
  hot_ranges_gauge_ =
      registry.GetGauge("wavebatch_sharded_hot_ranges", {{"store", store}},
                        "Key ranges replicated in the hot tier.");
  hot_keys_gauge_ =
      registry.GetGauge("wavebatch_sharded_hot_keys", {{"store", store}},
                        "Nonzero coefficients replicated in the hot tier.");
  epoch_gauge_ =
      registry.GetGauge("wavebatch_sharded_epoch", {{"store", store}},
                        "Tiering epoch (Rebalance() count).");
}

ShardedStore::~ShardedStore() = default;

std::string ShardedStore::name() const {
  return "sharded[" + std::to_string(shards_.size()) + "](" +
         shards_[0]->name() + ")";
}

double ShardedStore::Peek(uint64_t key) const {
  // The owning shard is authoritative: Peek bypasses the hot tier (whose
  // snapshot may lag an Add) exactly because it is the trusted path.
  return shards_[router_.ShardOf(key)]->Peek(key);
}

void ShardedStore::Add(uint64_t key, double delta) {
  shards_[router_.ShardOf(key)]->Add(key, delta);
}

uint64_t ShardedStore::NumNonZero() const {
  uint64_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->ForEachNonZero([&](uint64_t key, double) {
      if (router_.ShardOf(key) == s) ++total;
    });
  }
  return total;
}

double ShardedStore::SumAbs() const {
  double total = 0.0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->ForEachNonZero([&](uint64_t key, double value) {
      if (router_.ShardOf(key) == s) total += std::abs(value);
    });
  }
  return total;
}

void ShardedStore::ForEachNonZero(
    const std::function<void(uint64_t, double)>& fn) const {
  // Shard order; within a shard, the backend's own order. Keys a shard
  // holds but does not own (possible when a backend spans the full key
  // space) are skipped — the router is the single source of ownership.
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->ForEachNonZero([&](uint64_t key, double value) {
      if (router_.ShardOf(key) == s) fn(key, value);
    });
  }
}

uint64_t ShardedStore::shard_keys_fetched(size_t s) const {
  WB_CHECK(s < shards_.size());
  return shard_counters_[s].keys_fetched.load(std::memory_order_relaxed);
}

void ShardedStore::RecordRangeHits(
    const std::unordered_map<uint64_t, uint64_t>& batch_hits) const {
  if (batch_hits.empty()) return;
  std::lock_guard<std::mutex> lock(hits_mu_);
  for (const auto& [range, hits] : batch_hits) range_hits_[range] += hits;
}

Result<double> ShardedStore::DoFetch(uint64_t key, IoStats* io) const {
  const std::shared_ptr<const HotTier> tier = PinTier();
  const bool track = options_.promote_min_fetches > 0;
  if (tier != nullptr && tier->ranges.contains(RangeOf(key))) {
    const auto it = tier->values.find(key);
    const double value = it != tier->values.end() ? it->second : 0.0;
    hot_hits_.fetch_add(1, std::memory_order_relaxed);
    hot_keys_metric_->Add(1);
    if (track) RecordRangeHits({{RangeOf(key), 1}});
    return value;
  }
  const uint32_t s = router_.ShardOf(key);
  Result<double> value = DelegateFetch(*shards_[s], key, io);
  if (value.ok()) {
    shard_counters_[s].keys_fetched.fetch_add(1, std::memory_order_relaxed);
    shard_keys_metric_[s]->Add(1);
    cold_keys_metric_->Add(1);
    if (track) RecordRangeHits({{RangeOf(key), 1}});
  }
  return value;
}

Status ShardedStore::DoFetchBatch(std::span<const uint64_t> keys,
                                  std::span<double> out, IoStats* io) const {
  // No hints from the caller: one routing pass here, then the shared core.
  std::vector<uint32_t> shards_of(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    shards_of[i] = router_.ShardOf(keys[i]);
  }
  return FetchScatterGather(keys, shards_of, out, io);
}

Status ShardedStore::DoFetchBatchRouted(std::span<const uint64_t> keys,
                                        std::span<const uint32_t> shards,
                                        std::span<double> out,
                                        IoStats* io) const {
  return FetchScatterGather(keys, shards, out, io);
}

Status ShardedStore::FetchScatterGather(std::span<const uint64_t> keys,
                                        std::span<const uint32_t> shards_of,
                                        std::span<double> out,
                                        IoStats* io) const {
  const size_t n = keys.size();
  if (n == 0) return Status::OK();
  const std::shared_ptr<const HotTier> tier = PinTier();
  const size_t num_shards = shards_.size();
  const bool track = options_.promote_min_fetches > 0;

  std::unordered_map<uint64_t, uint64_t> batch_hits;
  if (track) {
    for (size_t i = 0; i < n; ++i) ++batch_hits[RangeOf(keys[i])];
  }

  // Fast path: one shard, nothing promoted — forward the span untouched.
  // This is the S=1 plane, bit-identical to the backend by construction.
  if (num_shards == 1 && tier == nullptr) {
    Status status = DelegateFetchBatch(*shards_[0], keys, out, io);
    if (status.ok()) {
      shard_counters_[0].keys_fetched.fetch_add(n, std::memory_order_relaxed);
      shard_keys_metric_[0]->Add(n);
      cold_keys_metric_->Add(n);
      subbatches_.fetch_add(1, std::memory_order_relaxed);
      subbatches_metric_->Add(1);
      if (track) RecordRangeHits(batch_hits);
    }
    return status;
  }

  // Partition batch positions: hot keys are served inline from the pinned
  // tier; cold keys group per owning shard, preserving batch order within
  // each group (so each sub-batch sees the same relative sequence the
  // unsharded backend would).
  std::vector<std::vector<size_t>> parts(num_shards);
  size_t hot_count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (tier != nullptr && tier->ranges.contains(RangeOf(keys[i]))) {
      const auto it = tier->values.find(keys[i]);
      out[i] = it != tier->values.end() ? it->second : 0.0;
      ++hot_count;
      continue;
    }
    const uint32_t s = shards_of[i];
    WB_CHECK(s < num_shards);
    parts[s].push_back(i);
  }

  struct SubBatch {
    std::vector<uint64_t> keys;
    std::vector<double> values;
    IoStats io;
    Status status;
  };
  std::vector<SubBatch> subs(num_shards);
  std::vector<size_t> issued;
  for (size_t s = 0; s < num_shards; ++s) {
    if (parts[s].empty()) continue;
    subs[s].keys.reserve(parts[s].size());
    for (const size_t i : parts[s]) subs[s].keys.push_back(keys[i]);
    subs[s].values.resize(parts[s].size());
    issued.push_back(s);
  }

  // Fan out: shard s's sub-batch always runs on shard s's pool (thread
  // affinity — one device queue per shard). Each task writes only its own
  // SubBatch slot; the latch below is the only cross-task synchronization.
  const auto run_sub = [&](size_t s) {
    // One span per shard leg. On a pool worker the submitter's TraceContext
    // is installed around the task (ThreadPool::Submit captures it), so the
    // leg parents under the serving request's fetch span across threads.
    telemetry::ScopedSpan span("shard_subbatch");
    span.AddAttr("shard", static_cast<double>(s));
    span.AddAttr("keys", static_cast<double>(subs[s].keys.size()));
    subs[s].status = DelegateFetchBatch(*shards_[s], subs[s].keys,
                                        subs[s].values, &subs[s].io);
  };
  if (pools_.empty() || issued.size() <= 1) {
    for (const size_t s : issued) run_sub(s);
  } else {
    std::mutex done_mu;
    std::condition_variable done_cv;
    size_t remaining = issued.size();
    for (const size_t s : issued) {
      pools_[s]->Submit([&, s] {
        run_sub(s);
        std::lock_guard<std::mutex> lock(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

  // All-or-nothing: any failed shard fails the whole batch (the lowest
  // shard's Status, deterministically), nothing is merged, and the wrapper
  // charges nothing — exactly the unsharded batch contract.
  for (const size_t s : issued) {
    if (!subs[s].status.ok()) return subs[s].status;
  }

  for (const size_t s : issued) {
    const std::vector<size_t>& part = parts[s];
    for (size_t j = 0; j < part.size(); ++j) {
      out[part[j]] = subs[s].values[j];
    }
    if (io != nullptr) *io += subs[s].io;
    shard_counters_[s].keys_fetched.fetch_add(part.size(),
                                              std::memory_order_relaxed);
    shard_keys_metric_[s]->Add(part.size());
  }
  cold_keys_metric_->Add(n - hot_count);
  if (hot_count > 0) {
    hot_hits_.fetch_add(hot_count, std::memory_order_relaxed);
    hot_keys_metric_->Add(hot_count);
  }
  subbatches_.fetch_add(issued.size(), std::memory_order_relaxed);
  subbatches_metric_->Add(issued.size());
  if (track) RecordRangeHits(batch_hits);
  return Status::OK();
}

RebalanceReport ShardedStore::Rebalance() {
  // Snapshot-and-reset the observation window.
  std::unordered_map<uint64_t, uint64_t> hits;
  {
    std::lock_guard<std::mutex> lock(hits_mu_);
    hits.swap(range_hits_);
  }

  // Rank: hottest first, ties toward the lower range id (deterministic for
  // a deterministic workload).
  std::vector<std::pair<uint64_t, uint64_t>> ranked;  // (range, hits)
  if (options_.promote_min_fetches > 0) {
    for (const auto& [range, count] : hits) {
      if (count >= options_.promote_min_fetches) ranked.emplace_back(range, count);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (options_.max_hot_ranges > 0 && ranked.size() > options_.max_hot_ranges) {
    ranked.resize(options_.max_hot_ranges);
  }

  auto tier = std::make_shared<HotTier>();
  for (const auto& [range, count] : ranked) tier->ranges.insert(range);
  if (!tier->ranges.empty()) {
    // Snapshot the promoted ranges from their owning shards. ForEachNonZero
    // (not Peek-per-key) so backends with bounded capacity are never probed
    // outside it; absent keys read as 0.0 from the tier, matching every
    // backend's absent-coefficient contract.
    for (size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->ForEachNonZero([&](uint64_t key, double value) {
        if (router_.ShardOf(key) != s) return;
        if (tier->ranges.contains(RangeOf(key))) tier->values.emplace(key, value);
      });
    }
  }

  RebalanceReport report;
  report.hot_ranges = tier->ranges.size();
  report.hot_keys = tier->values.size();
  report.epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  tier->epoch = report.epoch;
  // An empty tier is represented as "no tier": the read path keeps its
  // pre-promotion fast paths and bit-identity guarantees.
  hot_.Store(tier->ranges.empty() ? nullptr : std::move(tier));
  hot_ranges_gauge_->Set(static_cast<double>(report.hot_ranges));
  hot_keys_gauge_->Set(static_cast<double>(report.hot_keys));
  epoch_gauge_->Set(static_cast<double>(report.epoch));
  return report;
}

}  // namespace wavebatch
