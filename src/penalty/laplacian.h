#ifndef WAVEBATCH_PENALTY_LAPLACIAN_H_
#define WAVEBATCH_PENALTY_LAPLACIAN_H_

#include <utility>
#include <vector>

#include "penalty/penalty.h"
#include "query/partition.h"

namespace wavebatch {

/// Dirichlet-energy penalty p(e) = Σ_{(i,j)∈E} (e_i − e_j)² over an
/// adjacency structure on the batch (typically the grid adjacency of a
/// partition workload). Penalizes errors in the *differences* between
/// neighboring results — the "dramatic jumps / temporal surprises" use
/// case of Section 4. Quadratic: eᵀ·L·e with L the graph Laplacian.
class DifferencePenalty : public PenaltyFunction {
 public:
  /// `edges` are index pairs into the batch; `num_queries` bounds them.
  DifferencePenalty(size_t num_queries,
                    std::vector<std::pair<size_t, size_t>> edges);

  /// Adjacency of a grid partition workload (cell i ↔ query i).
  static DifferencePenalty ForGrid(const GridPartition& grid);

  double Apply(std::span<const double> e) const override;
  double HomogeneityDegree() const override { return 2.0; }
  bool IsQuadratic() const override { return true; }
  std::string name() const override { return "difference"; }
  std::string Fingerprint() const override;

 private:
  size_t num_queries_;
  std::vector<std::pair<size_t, size_t>> edges_;
};

/// P3: sum of square errors *of the discrete Laplacian*,
/// p(e) = Σ_i ( Σ_{j~i} (e_j − e_i) )² = ‖L·e‖², penalizing exactly the
/// error patterns that fabricate or hide local extrema. Quadratic: eᵀL²e.
class LaplacianPenalty : public PenaltyFunction {
 public:
  LaplacianPenalty(size_t num_queries,
                   std::vector<std::pair<size_t, size_t>> edges);

  static LaplacianPenalty ForGrid(const GridPartition& grid);

  double Apply(std::span<const double> e) const override;
  double HomogeneityDegree() const override { return 2.0; }
  bool IsQuadratic() const override { return true; }
  std::string name() const override { return "laplacian"; }
  std::string Fingerprint() const override;

 private:
  size_t num_queries_;
  // Neighbor lists per query (degree + neighbors), prebuilt from edges.
  std::vector<std::vector<size_t>> neighbors_;
};

/// A (discrete) first-order Sobolev penalty — one of the "well known
/// metrics" Definition 2 names:  p(e) = Σ|e_i|² + λ·Σ_{(i,j)∈E}(e_i−e_j)².
/// Balances absolute accuracy against the smoothness of the error field;
/// λ = 0 degenerates to SSE, λ → ∞ to pure Dirichlet energy. Quadratic.
class SobolevPenalty : public PenaltyFunction {
 public:
  SobolevPenalty(size_t num_queries,
                 std::vector<std::pair<size_t, size_t>> edges,
                 double lambda);

  static SobolevPenalty ForGrid(const GridPartition& grid, double lambda);

  double Apply(std::span<const double> e) const override;
  double HomogeneityDegree() const override { return 2.0; }
  bool IsQuadratic() const override { return true; }
  std::string name() const override { return "sobolev"; }
  std::string Fingerprint() const override;

  double lambda() const { return lambda_; }

 private:
  size_t num_queries_;
  std::vector<std::pair<size_t, size_t>> edges_;
  double lambda_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_PENALTY_LAPLACIAN_H_
