#include "wavelet/dwt1d.h"

#include <vector>

#include "util/bits.h"
#include "util/check.h"

namespace wavebatch {

void ForwardDwt1D(std::span<double> data, const WaveletFilter& filter) {
  const size_t n = data.size();
  WB_CHECK(IsPowerOfTwo(n)) << "DWT length must be a power of two, got " << n;
  if (n == 1) return;
  const std::span<const double> h = filter.lowpass();
  const std::span<const double> g = filter.highpass();
  const uint32_t len = filter.length();
  std::vector<double> scratch(n);
  for (size_t m = n; m >= 2; m >>= 1) {
    const size_t half = m / 2;
    for (size_t k = 0; k < half; ++k) {
      double s = 0.0, d = 0.0;
      for (uint32_t t = 0; t < len; ++t) {
        const double a = data[(2 * k + t) & (m - 1)];
        s += h[t] * a;
        d += g[t] * a;
      }
      scratch[k] = s;
      scratch[half + k] = d;
    }
    for (size_t i = 0; i < m; ++i) data[i] = scratch[i];
  }
}

void InverseDwt1D(std::span<double> data, const WaveletFilter& filter) {
  const size_t n = data.size();
  WB_CHECK(IsPowerOfTwo(n)) << "DWT length must be a power of two, got " << n;
  if (n == 1) return;
  const std::span<const double> h = filter.lowpass();
  const std::span<const double> g = filter.highpass();
  const uint32_t len = filter.length();
  std::vector<double> scratch(n);
  for (size_t m = 2; m <= n; m <<= 1) {
    const size_t half = m / 2;
    for (size_t i = 0; i < m; ++i) scratch[i] = 0.0;
    for (size_t k = 0; k < half; ++k) {
      const double s = data[k];
      const double d = data[half + k];
      for (uint32_t t = 0; t < len; ++t) {
        scratch[(2 * k + t) & (m - 1)] += h[t] * s + g[t] * d;
      }
    }
    for (size_t i = 0; i < m; ++i) data[i] = scratch[i];
  }
}

WaveletIndex1D DecodeWaveletIndex(uint64_t flat) {
  if (flat == 0) return {true, 0, 0};
  const uint32_t depth = FloorLog2(flat);
  return {false, depth, static_cast<uint32_t>(flat - (uint64_t{1} << depth))};
}

uint64_t EncodeWaveletIndex(const WaveletIndex1D& idx) {
  if (idx.is_scaling) return 0;
  return (uint64_t{1} << idx.depth) + idx.pos;
}

}  // namespace wavebatch
