#ifndef WAVEBATCH_QUERY_POLYNOMIAL_H_
#define WAVEBATCH_QUERY_POLYNOMIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cube/relation.h"
#include "cube/schema.h"

namespace wavebatch {

/// One term c · Π_i x_i^{e_i} of a polynomial in the schema attributes.
/// `exponents` has one entry per schema dimension (0 = absent variable).
struct Monomial {
  double coeff = 1.0;
  std::vector<uint32_t> exponents;
};

/// A multivariate polynomial p(x₀, …, x_{d-1}) in sparse monomial form —
/// the measure part of a polynomial range-sum q[x] = p(x)·χ_R(x)
/// (Definition 1 of the paper). Polynomials are kept in canonical form:
/// no duplicate exponent vectors, no zero coefficients.
class Polynomial {
 public:
  /// The zero polynomial over a d-dimensional schema.
  explicit Polynomial(size_t num_dims) : num_dims_(num_dims) {}

  /// Canonicalizing constructor from raw terms.
  Polynomial(size_t num_dims, std::vector<Monomial> terms);

  /// p(x) = c.
  static Polynomial Constant(size_t num_dims, double c);
  /// p(x) = x_dim.
  static Polynomial Attribute(size_t num_dims, size_t dim);
  /// p(x) = x_dim^power.
  static Polynomial AttributePower(size_t num_dims, size_t dim,
                                   uint32_t power);

  size_t num_dims() const { return num_dims_; }
  const std::vector<Monomial>& terms() const { return terms_; }
  bool IsZero() const { return terms_.empty(); }

  /// Maximum exponent of variable `dim` across terms.
  uint32_t DegreeIn(size_t dim) const;
  /// Maximum per-variable degree (the δ of Definition 1, which governs the
  /// required wavelet filter length 2δ+2).
  uint32_t MaxVarDegree() const;

  double Evaluate(const Tuple& t) const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator*(double c) const;

  /// e.g. "2*x0^2*x3 + 1".
  std::string ToString() const;

 private:
  size_t num_dims_;
  std::vector<Monomial> terms_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_QUERY_POLYNOMIAL_H_
