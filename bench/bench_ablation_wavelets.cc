// Ablation: filter choice (Section 3.1). Daubechies filters of length
// 2δ+2 are the shortest that keep degree-δ range-sums sparse; shorter
// filters stay exact but lose the sparsity bound, longer filters pay more
// per boundary. This harness sweeps the filter across the standard
// temperature workload (degree 1 in the measure dimension) and reports
// per-query nonzeros, master-list size, exactness residual, and the
// retrievals needed for 1% MRE.

#include <cmath>

#include "bench_common.h"
#include "util/table.h"
#include "core/progressive.h"
#include "penalty/sse.h"

namespace wavebatch::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              "bench_ablation_wavelets: filter-choice ablation\n" +
                  kCommonFlagsHelp);
  TemperatureDatasetOptions options = DataOptionsFromFlags(flags);
  // A smaller default domain: the Haar rewrite of a degree-1 query is
  // dense per dimension, so the naive counts explode at full scale.
  options.lat_size = static_cast<uint32_t>(flags.Int("lat", 32));
  options.lon_size = static_cast<uint32_t>(flags.Int("lon", 32));
  options.time_size = static_cast<uint32_t>(flags.Int("time", 16));
  options.num_records = static_cast<uint64_t>(flags.Int("records", 2000000));
  const std::vector<size_t> parts = {
      static_cast<size_t>(flags.Int("lat_parts", 8)),
      static_cast<size_t>(flags.Int("lon_parts", 8)),
      1, 1, 1};

  Table table({"filter", "supports deg", "avg nnz/query", "master list",
               "sharing", "max |exact err|", "retrievals to 1% MRE"});

  for (WaveletKind kind : {WaveletKind::kHaar, WaveletKind::kDb4,
                           WaveletKind::kDb6, WaveletKind::kDb8}) {
    const WaveletFilter& filter = WaveletFilter::Get(kind);
    std::cout << "running filter " << filter.name() << "..." << std::endl;
    Experiment exp(options, parts, 1234, kind);
    // Residual of the rewrite vs brute force on the cube.
    std::vector<double> brute = exp.workload.batch.BruteForce(exp.cube);
    double max_err = 0.0;
    for (size_t i = 0; i < brute.size(); ++i) {
      max_err = std::max(max_err, std::abs(brute[i] - exp.exact[i]) /
                                      (1.0 + std::abs(brute[i])));
    }
    // Progressive MRE to 1%.
    SsePenalty sse;
    ProgressiveEvaluator ev(&exp.list, &sse, exp.store.get());
    uint64_t to_1pct = 0;
    while (!ev.Done()) {
      ev.Step();
      if (ev.StepsTaken() % 64 == 0 || ev.Done()) {
        double mre = 0.0;
        size_t counted = 0;
        for (size_t i = 0; i < exp.exact.size(); ++i) {
          if (exp.exact[i] == 0.0) continue;
          mre += std::abs(ev.Estimates()[i] - exp.exact[i]) /
                 std::abs(exp.exact[i]);
          ++counted;
        }
        if (counted && mre / counted < 0.01) {
          to_1pct = ev.StepsTaken();
          break;
        }
      }
    }
    const double s = static_cast<double>(exp.workload.batch.size());
    table.AddRow(
        {filter.name(), std::to_string(filter.max_degree()),
         FormatDouble(exp.list.TotalQueryCoefficients() / s, 5),
         std::to_string(exp.list.size()),
         FormatDouble(exp.list.TotalQueryCoefficients() /
                          static_cast<double>(exp.list.size()),
                      4),
         FormatDouble(max_err, 3), std::to_string(to_1pct)});
  }

  std::cout << "\nFilter-choice ablation (degree-1 SUM workload):\n";
  table.Print(std::cout);
  std::cout << "expected shape: Haar (0 vanishing moments to spare) is "
               "exact but dense per query; Db4 = the paper's 2δ+2 sweet "
               "spot; Db6/Db8 buy nothing for degree 1 and pay wider "
               "boundaries.\n";

  const std::string csv = flags.Str("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) return 1;
  if (!WriteMetricsOut(flags)) return 1;
  return 0;
}

}  // namespace
}  // namespace wavebatch::bench

int main(int argc, char** argv) { return wavebatch::bench::Main(argc, argv); }
