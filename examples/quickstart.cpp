// Quickstart: build a small data cube, materialize its wavelet view, and
// answer a batch of range-sum queries exactly and progressively through
// the engine layer (EvalPlan + EvalSession).
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "data/generators.h"
#include "penalty/sse.h"
#include "strategy/wavelet_strategy.h"

using namespace wavebatch;

int main() {
  // 1. A schema: two attributes, each with domain [0, 64).
  Schema schema = Schema::Uniform(2, 64);

  // 2. Some data: 10,000 random tuples (a Relation is just a bag of rows).
  Relation relation = MakeUniformRelation(schema, 10000, /*seed=*/1);

  // 3. The storage strategy: the wavelet view of the data frequency
  //    distribution. Haar suffices for COUNT; use Db4 for degree-1 SUMs.
  //    BuildStore returns a unique_ptr; sessions share it as a
  //    shared_ptr<const CoefficientStore> — reads are const and
  //    thread-safe, so any number of sessions may use it at once.
  WaveletStrategy strategy(schema, WaveletKind::kDb4);
  std::shared_ptr<const CoefficientStore> store =
      strategy.BuildStore(relation.FrequencyDistribution());

  // 4. A batch of queries, submitted together so they share I/O.
  QueryBatch batch(schema);
  Range all = Range::All(schema);
  batch.Add(RangeSumQuery::Count(all.Restrict(0, 0, 31), "count lower half"));
  batch.Add(RangeSumQuery::Count(all.Restrict(0, 32, 63), "count upper half"));
  batch.Add(RangeSumQuery::Sum(all.Restrict(1, 10, 53), 0, "sum of x0"));
  batch.Add(RangeSumQuery::SumProduct(all, 0, 1, "sum of x0*x1"));

  // 5. Plan once: the master list merges the queries' wavelet
  //    coefficients (each fetched once, I/O shared across the batch) and
  //    precomputes the penalty-optimal progression order. Plans are
  //    immutable — cache them and share them across sessions.
  auto sse = std::make_shared<SsePenalty>();
  std::shared_ptr<const EvalPlan> plan =
      EvalPlan::Build(batch, strategy, sse).value();

  // 6. Exact evaluation: a key-ordered session run to completion.
  EvalSession::Options exact_opts;
  exact_opts.order = ProgressionOrder::kKeyOrder;
  EvalSession exact(plan, store, exact_opts);
  exact.RunToExact();
  std::printf("exact results (%llu coefficient retrievals, vs %llu naive):\n",
              static_cast<unsigned long long>(exact.io().retrievals),
              static_cast<unsigned long long>(
                  plan->list().TotalQueryCoefficients()));
  for (size_t i = 0; i < batch.size(); ++i) {
    std::printf("  %-20s = %.1f\n", batch.query(i).label().c_str(),
                exact.Estimates()[i]);
  }

  // 7. Progressive evaluation (Batch-Biggest-B, the default order):
  //    retrieve coefficients in decreasing importance; estimates are
  //    usable at every step and exact at the end. Each session tracks its
  //    own I/O — the shared store keeps no counters.
  EvalSession progressive(plan, store);
  std::printf("\nprogressive estimates (SSE-optimal order):\n");
  for (size_t budget : {8, 32, 128}) {
    progressive.StepMany(budget - progressive.StepsTaken());
    std::printf("  after %3llu retrievals:",
                static_cast<unsigned long long>(progressive.StepsTaken()));
    for (double e : progressive.Estimates()) std::printf(" %10.1f", e);
    std::printf("\n");
  }
  progressive.RunToExact();
  std::printf("  exact    (%4llu)     :",
              static_cast<unsigned long long>(progressive.StepsTaken()));
  for (double e : progressive.Estimates()) std::printf(" %10.1f", e);
  std::printf("\n");
  return 0;
}
