file(REMOVE_RECURSE
  "CMakeFiles/wavebatch_strategy.dir/identity_strategy.cc.o"
  "CMakeFiles/wavebatch_strategy.dir/identity_strategy.cc.o.d"
  "CMakeFiles/wavebatch_strategy.dir/linear_strategy.cc.o"
  "CMakeFiles/wavebatch_strategy.dir/linear_strategy.cc.o.d"
  "CMakeFiles/wavebatch_strategy.dir/prefix_sum_strategy.cc.o"
  "CMakeFiles/wavebatch_strategy.dir/prefix_sum_strategy.cc.o.d"
  "CMakeFiles/wavebatch_strategy.dir/wavelet_strategy.cc.o"
  "CMakeFiles/wavebatch_strategy.dir/wavelet_strategy.cc.o.d"
  "libwavebatch_strategy.a"
  "libwavebatch_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavebatch_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
