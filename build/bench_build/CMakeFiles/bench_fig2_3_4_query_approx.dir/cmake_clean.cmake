file(REMOVE_RECURSE
  "../bench/bench_fig2_3_4_query_approx"
  "../bench/bench_fig2_3_4_query_approx.pdb"
  "CMakeFiles/bench_fig2_3_4_query_approx.dir/bench_fig2_3_4_query_approx.cc.o"
  "CMakeFiles/bench_fig2_3_4_query_approx.dir/bench_fig2_3_4_query_approx.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_3_4_query_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
