#ifndef WAVEBATCH_PENALTY_PENALTY_H_
#define WAVEBATCH_PENALTY_PENALTY_H_

#include <memory>
#include <span>
#include <string>

namespace wavebatch {

/// A structural error penalty function (Definition 2 of the paper): a
/// non-negative, homogeneous, convex function p on error vectors with
/// p(0) = 0 and p(−e) = p(e). One entry of the error vector per query in
/// the batch.
///
/// The same function doubles as the importance function of Batch-Biggest-B
/// (Definition 3): ι_p(ξ) = p(q̂₀[ξ], …, q̂_{s−1}[ξ]) — apply the penalty to
/// the column of query coefficients at wavelet ξ. Theorems 1 and 2 prove
/// that retrieving coefficients in decreasing ι_p order minimizes both the
/// worst-case and (for quadratic p) the expected penalty at every step.
class PenaltyFunction {
 public:
  virtual ~PenaltyFunction() = default;

  /// p(e). `e` has one entry per batch query.
  virtual double Apply(std::span<const double> e) const = 0;

  /// Degree of homogeneity α: p(c·e) = |c|^α·p(e). Quadratic forms have
  /// α = 2; norms have α = 1. Theorem 1's worst-case bound is K^α·ι_p(ξ′).
  virtual double HomogeneityDegree() const = 0;

  /// True iff p is a positive semi-definite quadratic form (the class for
  /// which Theorem 2's expected-penalty analysis holds).
  virtual bool IsQuadratic() const { return false; }

  virtual std::string name() const = 0;

  /// Byte-exact encoding of this penalty's *content*: type tag plus every
  /// parameter that affects Apply(). Two penalties with equal fingerprints
  /// produce equal importance orderings, so PlanCache may serve one plan
  /// for both — even across distinct (or recycled) object addresses. Build
  /// with the helpers in util/fingerprint.h; start with the length-prefixed
  /// type tag so different types can never collide.
  virtual std::string Fingerprint() const = 0;
};

using PenaltyPtr = std::unique_ptr<PenaltyFunction>;

}  // namespace wavebatch

#endif  // WAVEBATCH_PENALTY_PENALTY_H_
