// Decorator pass-through audit: every store decorator must forward every
// public entry point faithfully. For each decorator wrapped around a
// sharded (S=2) plane, every read path — Peek, Fetch, FetchBatch,
// FetchBatchRouted (with hints from the decorator's own router), and the
// aggregate scans — must produce values identical to the naked inner
// store, with identical IoStats (identical retrievals for all decorators;
// BlockStore's block counters are its own sub-model, additive on top and
// asserted separately). This is the regression net for the classic
// decorator bug: adding a new entry point to the base class and forgetting
// to forward it in one wrapper, which silently drops the wrapper (or the
// batch optimization) from that path.

#include <memory>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "storage/block_store.h"
#include "storage/fault_injection_store.h"
#include "storage/key_router.h"
#include "storage/memory_store.h"
#include "storage/sharded_store.h"
#include "storage/versioned_store.h"
#include "strategy/wavelet_strategy.h"

namespace wavebatch {
namespace {

/// The probe workload: every nonzero key of the reference store plus a
/// sprinkle of absent keys (decorators must forward zeros too).
struct Probe {
  std::vector<uint64_t> keys;
  std::vector<double> expected;
};

Probe MakeProbe(const CoefficientStore& reference) {
  Probe probe;
  reference.ForEachNonZero([&](uint64_t key, double value) {
    probe.keys.push_back(key);
    probe.expected.push_back(value);
  });
  const uint64_t max_key = probe.keys.empty() ? 0 : probe.keys.back();
  for (uint64_t key = max_key + 1; key <= max_key + 5; ++key) {
    probe.keys.push_back(key);
    probe.expected.push_back(0.0);
  }
  return probe;
}

/// Exercises every public read entry point of `store` and checks values
/// against `probe` and I/O accounting against `expect_io` (retrievals
/// always; block counters only when `check_blocks`).
void AuditReadPaths(const CoefficientStore& store, const Probe& probe,
                    const IoStats& expect_io, bool check_blocks,
                    const char* label) {
  SCOPED_TRACE(label);

  // Scalar counted path.
  IoStats scalar_io;
  for (size_t i = 0; i < probe.keys.size(); ++i) {
    Result<double> value = store.Fetch(probe.keys[i], &scalar_io);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, probe.expected[i]) << "key " << probe.keys[i];
    EXPECT_EQ(store.Peek(probe.keys[i]), probe.expected[i]);
  }
  EXPECT_EQ(scalar_io.retrievals, expect_io.retrievals);

  // Batched counted path.
  IoStats batch_io;
  std::vector<double> out(probe.keys.size(), -1.0);
  ASSERT_TRUE(store.FetchBatch(probe.keys, out, &batch_io).ok());
  for (size_t i = 0; i < probe.keys.size(); ++i) {
    EXPECT_EQ(out[i], probe.expected[i]) << "key " << probe.keys[i];
  }
  EXPECT_EQ(batch_io.retrievals, expect_io.retrievals);
  if (check_blocks) {
    EXPECT_EQ(batch_io.block_reads, expect_io.block_reads);
    EXPECT_EQ(batch_io.block_hits, expect_io.block_hits);
  }

  // Routed batched path, hints from the decorator's own router — the
  // entry point most recently added to the seam, and the easiest to
  // forget in a wrapper.
  if (const KeyRouter* router = store.router(); router != nullptr) {
    std::vector<uint32_t> shards;
    for (uint64_t key : probe.keys) shards.push_back(router->ShardOf(key));
    IoStats routed_io;
    std::fill(out.begin(), out.end(), -1.0);
    ASSERT_TRUE(store.FetchBatchRouted(probe.keys, shards, out, &routed_io)
                    .ok());
    for (size_t i = 0; i < probe.keys.size(); ++i) {
      EXPECT_EQ(out[i], probe.expected[i]) << "key " << probe.keys[i];
    }
    EXPECT_EQ(routed_io.retrievals, expect_io.retrievals);
    if (check_blocks) {
      EXPECT_EQ(routed_io.block_reads, expect_io.block_reads);
      EXPECT_EQ(routed_io.block_hits, expect_io.block_hits);
    }
  }

  // Aggregate scans.
  uint64_t nnz = 0;
  double recomputed_sum_abs = 0.0;
  store.ForEachNonZero([&](uint64_t, double value) {
    ++nnz;
    recomputed_sum_abs += value < 0 ? -value : value;
  });
  EXPECT_EQ(store.NumNonZero(), nnz);
  EXPECT_GT(nnz, 0u);
  EXPECT_NEAR(store.SumAbs(), recomputed_sum_abs,
              1e-9 * (1.0 + recomputed_sum_abs));
}

class DecoratorPassthroughTest : public ::testing::Test {
 protected:
  DecoratorPassthroughTest() : schema_(Schema::Uniform(2, 16)) {
    WaveletStrategy strategy(schema_, WaveletKind::kHaar);
    Relation rel = MakeUniformRelation(schema_, 400, 13);
    reference_ = strategy.BuildStore(rel.FrequencyDistribution());
    probe_ = MakeProbe(*reference_);
  }

  /// A two-shard plane holding the reference coefficients; the inner store
  /// every decorator wraps, so the audit covers forwarding *through* a
  /// router-bearing store.
  std::unique_ptr<ShardedStore> MakeShardedInner() const {
    std::vector<std::unique_ptr<HashStore>> hash_shards;
    for (int s = 0; s < 2; ++s) {
      hash_shards.push_back(std::make_unique<HashStore>());
    }
    uint64_t max_key = 0;
    reference_->ForEachNonZero(
        [&](uint64_t key, double) { max_key = std::max(max_key, key); });
    KeyRouter router = KeyRouter::Uniform(max_key + 1, 2);
    reference_->ForEachNonZero([&](uint64_t key, double value) {
      hash_shards[router.ShardOf(key)]->Add(key, value);
    });
    std::vector<std::unique_ptr<CoefficientStore>> shards;
    for (auto& shard : hash_shards) shards.push_back(std::move(shard));
    return std::make_unique<ShardedStore>(std::move(shards), router,
                                          ShardedStoreOptions{});
  }

  IoStats PlainIo() const {
    IoStats io;
    io.retrievals = probe_.keys.size();
    return io;
  }

  Schema schema_;
  std::unique_ptr<CoefficientStore> reference_;
  Probe probe_;
};

TEST_F(DecoratorPassthroughTest, NakedShardedPlaneIsTheBaseline) {
  auto inner = MakeShardedInner();
  ASSERT_NE(inner->router(), nullptr);
  AuditReadPaths(*inner, probe_, PlainIo(), /*check_blocks=*/true, "sharded");
}

TEST_F(DecoratorPassthroughTest, HealthyFaultInjectionStoreIsTransparent) {
  FaultInjectionStore store(MakeShardedInner());
  ASSERT_NE(store.router(), nullptr) << "router must survive the wrapper";
  AuditReadPaths(store, probe_, PlainIo(), /*check_blocks=*/true, "faulty");
  EXPECT_EQ(store.injected_failures(), 0u);
}

TEST_F(DecoratorPassthroughTest, BlockStoreForwardsValuesAndAddsItsSubModel) {
  constexpr uint64_t kBlockSize = 8;
  BlockStore store(MakeShardedInner(), kBlockSize, /*cache_blocks=*/0);
  ASSERT_NE(store.router(), nullptr);

  // Values and retrievals identical to the inner plane; block counters are
  // the wrapper's own sub-model, checked for the batched paths: unbuffered
  // batches read each distinct block exactly once.
  IoStats expected = PlainIo();
  std::vector<bool> seen;
  for (uint64_t key : probe_.keys) {
    const uint64_t block = key / kBlockSize;
    if (block >= seen.size()) seen.resize(block + 1, false);
    if (!seen[block]) {
      seen[block] = true;
      ++expected.block_reads;
    }
  }
  AuditReadPaths(store, probe_, expected, /*check_blocks=*/true, "blocked");
}

TEST_F(DecoratorPassthroughTest, SnapshotStoreWithNullOverlayIsTransparent) {
  std::shared_ptr<const CoefficientStore> inner = MakeShardedInner();
  SnapshotStore store(/*epoch=*/0, inner, /*overlay=*/nullptr);
  ASSERT_EQ(store.router(), inner->router());
  AuditReadPaths(store, probe_, PlainIo(), /*check_blocks=*/true, "snapshot");
}

TEST_F(DecoratorPassthroughTest, SnapshotStoreAppliesItsOverlayOnEveryPath) {
  std::shared_ptr<const CoefficientStore> inner = MakeShardedInner();
  // Overlay: +1 on every third probed key, plus one key absent from the
  // base — every read path must see base ⊕ overlay.
  auto overlay = std::make_shared<DeltaOverlay>();
  Probe shifted = probe_;
  for (size_t i = 0; i < probe_.keys.size(); i += 3) {
    overlay->adds[probe_.keys[i]] = 1.0;
    shifted.expected[i] += 1.0;
  }
  SnapshotStore store(/*epoch=*/1, inner, overlay);
  AuditReadPaths(store, shifted, PlainIo(), /*check_blocks=*/true,
                 "snapshot+overlay");
}

TEST_F(DecoratorPassthroughTest, StackedDecoratorsComposeWithoutDoubleCount) {
  // The full stack the streaming fault tests use: fault injection over a
  // block simulation over a published snapshot over the sharded plane.
  // One retrieval per key, charged once, values intact end to end.
  auto snapshot = std::make_shared<SnapshotStore>(
      /*epoch=*/0, std::shared_ptr<const CoefficientStore>(MakeShardedInner()),
      nullptr);
  auto blocked = std::make_unique<BlockStore>(
      std::make_unique<FaultInjectionStore>(
          const_cast<CoefficientStore*>(
              static_cast<const CoefficientStore*>(snapshot.get()))),
      /*block_size=*/8, /*cache_blocks=*/0);
  AuditReadPaths(*blocked, probe_, PlainIo(), /*check_blocks=*/false,
                 "stacked");
}

TEST_F(DecoratorPassthroughTest, DecoratorsDoNotForwardPinVersion) {
  // Forwarding PinVersion through a decorator would hand sessions the
  // naked inner snapshot and silently drop the decorator from the read
  // path — the seam's contract is that decorators return null and callers
  // wrap a pinned snapshot instead.
  FaultInjectionStore faulty(MakeShardedInner());
  EXPECT_EQ(faulty.PinVersion(), nullptr);
  BlockStore blocked(MakeShardedInner(), 8, 0);
  EXPECT_EQ(blocked.PinVersion(), nullptr);
  std::shared_ptr<const CoefficientStore> inner = MakeShardedInner();
  SnapshotStore snapshot(0, inner, nullptr);
  EXPECT_EQ(snapshot.PinVersion(), nullptr)
      << "a snapshot is its own snapshot";
}

}  // namespace
}  // namespace wavebatch
