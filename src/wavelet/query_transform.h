#ifndef WAVEBATCH_WAVELET_QUERY_TRANSFORM_H_
#define WAVEBATCH_WAVELET_QUERY_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "wavelet/filters.h"
#include "wavelet/sparse_vec.h"

namespace wavebatch {

/// Relative magnitude below which transformed query coefficients are treated
/// as (numerically) zero. Range-sum query vectors have *exactly* sparse
/// transforms when the filter has enough vanishing moments; the threshold
/// only sweeps out roundoff produced by cancellation.
inline constexpr double kQueryCoefficientRelEps = 1e-12;

/// Sparse DWT of the one-dimensional vector
///     v[x] = x^degree   for lo <= x <= hi,   0 otherwise
/// over a length-n periodic domain, in the dyadic layout of ForwardDwt1D.
///
/// When filter.max_degree() >= degree, the result has O(filter.length() *
/// log n) nonzero entries (interior detail coefficients vanish by the
/// vanishing-moment property); with too short a filter the result is still
/// exact but dense — the trade-off bench_ablation_wavelets quantifies.
///
/// Entries are returned sorted by flat index.
std::vector<SparseEntry> SparseRangeMonomialDwt1D(uint64_t n, uint32_t lo,
                                                  uint32_t hi, uint32_t degree,
                                                  const WaveletFilter& filter);

/// Sparse DWT of an arbitrary length-n vector (dense transform + nonzero
/// collection with the same relative threshold). Exposed for tests and for
/// non-monomial 1-D factors.
std::vector<SparseEntry> SparseDwt1D(std::vector<double> dense,
                                     const WaveletFilter& filter);

}  // namespace wavebatch

#endif  // WAVEBATCH_WAVELET_QUERY_TRANSFORM_H_
