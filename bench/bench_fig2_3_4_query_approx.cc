// Figures 2–4 (Section 3.1): progressive approximation of a typical
// degree-1 polynomial range-sum query vector with Db4 wavelets.
//
// The paper plots q[x1, x2] = x1·χ_R(x1, x2) with R = {55 ≤ x1 ≤ 127,
// 25 ≤ x2 ≤ 40} on a 128×128 domain, reconstructed from its 25 biggest
// wavelets (Fig 2: rough shape, range boundaries inexact, periodic
// spillover), 150 biggest (Fig 3: sharp boundaries, Gibbs ringing), and
// all ≈837 nonzeros (Fig 4: exact). This harness reproduces the numbers
// behind those pictures: nonzero count, reconstruction error norms, and
// boundary/interior error split per B, and optionally dumps the
// reconstructed surfaces as CSV grids for plotting.

#include <algorithm>
#include <cmath>
#include <fstream>

#include "bench_common.h"
#include "query/range_sum.h"
#include "util/table.h"
#include "wavelet/dwt_nd.h"

namespace wavebatch::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              "bench_fig2_3_4_query_approx: reproduce Figures 2-4\n"
              "  --n=128     domain side (power of two)\n"
              "  --surface_csv=prefix  dump reconstructed surfaces\n"
              "  --csv=path  error table CSV\n");
  const uint32_t n = static_cast<uint32_t>(flags.Int("n", 128));

  Result<Schema> schema =
      Schema::Create({{"x1", n}, {"x2", n}});
  if (!schema.ok()) {
    std::cerr << schema.status() << std::endl;
    return 1;
  }
  // The paper's "total salary paid to employees between age 25 and 40 who
  // make at least 55K" query: weight x1 on R = [55, n-1] x [25, 40].
  Result<Range> range = Range::Create(
      *schema, {{55, n - 1}, {25, 40}});
  if (!range.ok()) {
    std::cerr << range.status() << std::endl;
    return 1;
  }
  RangeSumQuery query = RangeSumQuery::Sum(*range, 0);
  DenseCube exact = query.ToDenseVector(*schema);

  // Full wavelet transform of the query vector, then order coefficients by
  // magnitude (the single-query SSE biggest-B order).
  const WaveletFilter& filter = WaveletFilter::Get(WaveletKind::kDb4);
  DenseCube transformed = exact;
  ForwardDwtNd(transformed, filter);
  std::vector<std::pair<double, uint64_t>> coeffs;
  const double max_abs = [&] {
    double m = 0.0;
    for (uint64_t i = 0; i < transformed.size(); ++i) {
      m = std::max(m, std::abs(transformed[i]));
    }
    return m;
  }();
  for (uint64_t i = 0; i < transformed.size(); ++i) {
    if (std::abs(transformed[i]) > max_abs * 1e-12) {
      coeffs.emplace_back(std::abs(transformed[i]), i);
    }
  }
  std::sort(coeffs.rbegin(), coeffs.rend());
  std::cout << "query vector: " << query.poly().ToString() << " on "
            << range->ToString() << "\n";
  std::cout << "nonzero Db4 coefficients: " << coeffs.size()
            << "  (paper: ~837 on its 128x128 example)\n\n";

  const double exact_l2 = std::sqrt(exact.SumSquares());
  Table table({"B (wavelets)", "L2 error", "relative L2", "Linf error",
               "boundary Linf", "interior Linf"});

  std::vector<uint64_t> bs = {25, 150, coeffs.size()};
  for (uint64_t b : bs) {
    b = std::min<uint64_t>(b, coeffs.size());
    DenseCube truncated(*schema);
    for (uint64_t i = 0; i < b; ++i) {
      truncated[coeffs[i].second] = transformed[coeffs[i].second];
    }
    InverseDwtNd(truncated, filter);
    // Error metrics, split into range-boundary band vs elsewhere (the Gibbs
    // phenomenon lives on the boundary).
    double sse = 0.0, linf = 0.0, boundary_linf = 0.0, interior_linf = 0.0;
    for (uint32_t x1 = 0; x1 < n; ++x1) {
      for (uint32_t x2 = 0; x2 < n; ++x2) {
        std::vector<uint32_t> c = {x1, x2};
        const double err =
            std::abs(truncated.at(c) - exact.at(c));
        sse += err * err;
        linf = std::max(linf, err);
        const bool near_boundary =
            (std::abs(static_cast<int>(x1) - 55) <= 2) ||
            (std::abs(static_cast<int>(x2) - 25) <= 2) ||
            (std::abs(static_cast<int>(x2) - 40) <= 2) ||
            x1 >= n - 3 || x1 <= 2;  // periodic wrap of the x1 edge
        if (near_boundary) {
          boundary_linf = std::max(boundary_linf, err);
        } else {
          interior_linf = std::max(interior_linf, err);
        }
      }
    }
    table.AddRow({std::to_string(b), FormatDouble(std::sqrt(sse), 5),
                  FormatDouble(std::sqrt(sse) / exact_l2, 5),
                  FormatDouble(linf, 5), FormatDouble(boundary_linf, 5),
                  FormatDouble(interior_linf, 5)});

    const std::string prefix = flags.Str("surface_csv", "");
    if (!prefix.empty()) {
      std::ofstream out(prefix + "_B" + std::to_string(b) + ".csv");
      for (uint32_t x1 = 0; x1 < n; ++x1) {
        for (uint32_t x2 = 0; x2 < n; ++x2) {
          if (x2) out << ',';
          out << truncated.at(std::vector<uint32_t>{x1, x2});
        }
        out << '\n';
      }
    }
  }

  std::cout << "B-term reconstructions of the query vector "
               "(Fig 2: B=25, Fig 3: B=150, Fig 4: all)\n";
  table.Print(std::cout);
  std::cout << "expected shape: interior error collapses quickly; the "
               "residual Linf concentrates on range boundaries (Gibbs) and "
               "the periodic wrap, matching the paper's plots.\n";

  const std::string csv = flags.Str("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) return 1;
  if (!WriteMetricsOut(flags)) return 1;
  return 0;
}

}  // namespace
}  // namespace wavebatch::bench

int main(int argc, char** argv) { return wavebatch::bench::Main(argc, argv); }
