#ifndef WAVEBATCH_UTIL_BITPACK_H_
#define WAVEBATCH_UTIL_BITPACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace wavebatch {

/// Fixed-width bit packing over a little-endian u64 word array — the layout
/// behind the compressed block pages (storage/compressed_block.h). Field i
/// occupies bits [i*width, (i+1)*width) of the stream; fields may straddle a
/// word boundary. Random access is O(1), which is what lets a compressed
/// page binary-search its key offsets without decoding the whole run.
///
/// `width` is in [1, 64]. Appending and reading are branch-light and
/// portable scalar code: the packed streams are cold relative to the apply
/// kernels, so clarity wins over SIMD here.

/// Number of u64 words needed for `count` fields of `width` bits.
inline size_t BitPackWords(size_t count, uint32_t width) {
  return (count * static_cast<size_t>(width) + 63) / 64;
}

/// Exact payload size in bytes (what a serialized stream would occupy; the
/// in-memory words round up to 8-byte granularity).
inline uint64_t BitPackBytes(size_t count, uint32_t width) {
  return (count * static_cast<uint64_t>(width) + 7) / 8;
}

/// Minimal width able to represent `value` (1 for value 0 — a field always
/// has at least one bit so counts stay recoverable from widths).
inline uint32_t BitWidthFor(uint64_t value) {
  uint32_t width = 1;
  while (width < 64 && (value >> width) != 0) ++width;
  return width;
}

/// Writes `value` (must fit in `width` bits) as field `index` of `words`.
/// The words array must be BitPackWords(...) long and zero-initialized;
/// each field is written at most once.
inline void BitPackWrite(std::vector<uint64_t>& words, uint32_t width,
                         size_t index, uint64_t value) {
  WB_CHECK(width >= 1 && width <= 64);
  WB_CHECK(width == 64 || (value >> width) == 0);
  const size_t bit = index * static_cast<size_t>(width);
  const size_t word = bit / 64;
  const uint32_t shift = static_cast<uint32_t>(bit % 64);
  words[word] |= value << shift;
  if (shift + width > 64) {
    words[word + 1] |= value >> (64 - shift);
  }
}

/// Reads field `index` from a stream packed with BitPackWrite.
inline uint64_t BitPackRead(const uint64_t* words, uint32_t width,
                            size_t index) {
  const size_t bit = index * static_cast<size_t>(width);
  const size_t word = bit / 64;
  const uint32_t shift = static_cast<uint32_t>(bit % 64);
  uint64_t value = words[word] >> shift;
  if (shift + width > 64) {
    value |= words[word + 1] << (64 - shift);
  }
  if (width == 64) return value;
  return value & ((uint64_t{1} << width) - 1);
}

}  // namespace wavebatch

#endif  // WAVEBATCH_UTIL_BITPACK_H_
