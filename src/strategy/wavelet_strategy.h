#ifndef WAVEBATCH_STRATEGY_WAVELET_STRATEGY_H_
#define WAVEBATCH_STRATEGY_WAVELET_STRATEGY_H_

#include "strategy/linear_strategy.h"
#include "wavelet/filters.h"

namespace wavebatch {

/// The paper's primary strategy: the view is the standard d-dimensional
/// orthonormal DWT of Δ; query vectors are rewritten by transforming each
/// separable monomial factor per dimension and expanding the tensor
/// product. With a Daubechies filter of length 2δ+2 and per-variable
/// degree ≤ δ, the rewritten query has O((4δ+2)^d log^d N) nonzeros and a
/// tuple insertion touches O((2δ+2)^d log^d N) view coefficients.
///
/// Coefficient keys pack the per-dimension wavelet indices with the same
/// bit layout Schema::Pack uses for cells.
class WaveletStrategy : public LinearStrategy {
 public:
  WaveletStrategy(Schema schema, WaveletKind kind);

  const WaveletFilter& filter() const { return filter_; }

  Result<SparseVec> TransformQuery(const RangeSumQuery& query) const override;

  /// Dense build: transforms a copy of Δ and stores it as a DenseStore
  /// (array-based storage; exact, memory ∝ domain cells).
  std::unique_ptr<CoefficientStore> BuildStore(
      const DenseCube& delta) const override;

  /// The paper's poly-logarithmic maintenance path (Section 2.1): the
  /// per-dimension sparse impulse DWTs tensor-expanded into the packed key
  /// space. The entry count is checked against the O((2δ+2)^d log^d N)
  /// bound — at most Π_i (L·log2(n_i) + 1) entries for filter length
  /// L = 2δ+2.
  Result<SparseVec> TransformUpdate(const Tuple& tuple,
                                    double count) const override;

  std::string name() const override;

 protected:
  /// Empty HashStore: the streaming/sparse build path stores only nonzero
  /// coefficients, so memory ∝ wavelet support of the data, not the domain.
  std::unique_ptr<CoefficientStore> MakeEmptyStore() const override;

 private:
  const WaveletFilter& filter_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STRATEGY_WAVELET_STRATEGY_H_
