// Empirical verification of Theorems 1 and 2: the biggest-B approximation
// has (a) the smallest worst-case penalty and (b) the smallest expected
// penalty over data vectors drawn uniformly from the unit sphere, among all
// B-term approximations.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/master_list.h"
#include "gtest/gtest.h"
#include "penalty/sse.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

// A tiny workload whose master list we can exhaustively analyze.
struct TinyWorkload {
  Schema schema = Schema::Uniform(2, 4);  // 16 cells
  QueryBatch batch;
  MasterList list;
  std::vector<double> importance;  // SSE importance per entry

  TinyWorkload() : batch(schema) {
    WaveletStrategy strategy(schema, WaveletKind::kHaar);
    batch.Add(RangeSumQuery::Count(
        Range::Create(schema, {{0, 1}, {0, 3}}).value()));
    batch.Add(RangeSumQuery::Count(
        Range::Create(schema, {{1, 2}, {1, 2}}).value()));
    batch.Add(RangeSumQuery::Count(
        Range::Create(schema, {{0, 3}, {2, 3}}).value()));
    batch.Add(RangeSumQuery::Count(
        Range::Create(schema, {{3, 3}, {0, 2}}).value()));
    list = MasterList::Build(batch, strategy).value();
    SsePenalty sse;
    std::vector<double> column(batch.size(), 0.0);
    for (size_t i = 0; i < list.size(); ++i) {
      for (const auto& [q, c] : list.entry(i).uses) column[q] = c;
      importance.push_back(sse.Apply(column));
      for (const auto& [q, c] : list.entry(i).uses) column[q] = 0.0;
    }
  }

  // SSE of the B-term approximation that uses exactly `subset` (indices into
  // the master list), on transformed data `delta_hat` (values aligned with
  // master-list entries; coefficients outside the master list are irrelevant
  // because every query coefficient there is zero).
  double PenaltyForSubset(const std::vector<bool>& used,
                          const std::vector<double>& delta_hat) const {
    std::vector<double> err(batch.size(), 0.0);
    for (size_t i = 0; i < list.size(); ++i) {
      if (used[i]) continue;
      for (const auto& [q, c] : list.entry(i).uses) {
        err[q] += c * delta_hat[i];
      }
    }
    double sse = 0.0;
    for (double e : err) sse += e * e;
    return sse;
  }

  std::vector<bool> BiggestBSet(size_t b) const {
    std::vector<size_t> order(list.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t c) {
      return importance[a] > importance[c];
    });
    std::vector<bool> used(list.size(), false);
    for (size_t i = 0; i < b; ++i) used[order[i]] = true;
    return used;
  }
};

// Uniform unit vector over the master-list coordinates (the relevant
// subspace; the data vector's energy outside it never reaches any query).
std::vector<double> RandomSphereVector(size_t n, Rng& rng) {
  std::vector<double> v(n);
  double norm_sq = 0.0;
  for (double& x : v) {
    x = rng.Gaussian();
    norm_sq += x * x;
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (double& x : v) x *= inv;
  return v;
}

TEST(Theorem1Test, BiggestBMinimizesMaxUnusedImportance) {
  // The worst-case penalty of a B-term approximation is K^α times the
  // largest unused importance; taking the top-B minimizes it vs 200 random
  // subsets at every B.
  TinyWorkload w;
  Rng rng(71);
  for (size_t b : {size_t{1}, w.list.size() / 4, w.list.size() / 2,
                   w.list.size() - 1}) {
    std::vector<bool> best = w.BiggestBSet(b);
    double best_worst = 0.0;
    for (size_t i = 0; i < w.list.size(); ++i) {
      if (!best[i]) best_worst = std::max(best_worst, w.importance[i]);
    }
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<size_t> perm(w.list.size());
      std::iota(perm.begin(), perm.end(), size_t{0});
      rng.Shuffle(perm);
      std::vector<bool> used(w.list.size(), false);
      for (size_t i = 0; i < b; ++i) used[perm[i]] = true;
      double worst = 0.0;
      for (size_t i = 0; i < w.list.size(); ++i) {
        if (!used[i]) worst = std::max(worst, w.importance[i]);
      }
      EXPECT_GE(worst + 1e-12, best_worst) << "B=" << b;
    }
  }
}

TEST(Theorem1Test, ConcentratedDataRealizesWorstCase) {
  // The proof's tightness argument: data concentrated on the most important
  // unused wavelet achieves exactly K²·ι(ξ′).
  TinyWorkload w;
  const size_t b = w.list.size() / 2;
  std::vector<bool> used = w.BiggestBSet(b);
  size_t worst_idx = 0;
  double worst_importance = -1.0;
  for (size_t i = 0; i < w.list.size(); ++i) {
    if (!used[i] && w.importance[i] > worst_importance) {
      worst_importance = w.importance[i];
      worst_idx = i;
    }
  }
  const double k = 2.5;  // any Σ|Δ̂| works; homogeneity scales it
  std::vector<double> delta_hat(w.list.size(), 0.0);
  delta_hat[worst_idx] = k;
  EXPECT_NEAR(w.PenaltyForSubset(used, delta_hat),
              k * k * worst_importance, 1e-9);
}

TEST(Theorem2Test, ExpectedPenaltyMatchesTraceFormula) {
  // E[p] = Σ_{unused} ι(ξ) / n over the unit sphere in the n-dimensional
  // master-list subspace (Monte Carlo check).
  TinyWorkload w;
  const size_t n = w.list.size();
  const size_t b = n / 2;
  std::vector<bool> used = w.BiggestBSet(b);
  double trace_formula = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!used[i]) trace_formula += w.importance[i];
  }
  trace_formula /= static_cast<double>(n);

  Rng rng(77);
  const int kSamples = 20000;
  double mean = 0.0;
  for (int s = 0; s < kSamples; ++s) {
    mean += w.PenaltyForSubset(used, RandomSphereVector(n, rng));
  }
  mean /= kSamples;
  EXPECT_NEAR(mean, trace_formula, 0.05 * trace_formula);
}

TEST(Theorem2Test, BiggestBMinimizesEmpiricalAveragePenalty) {
  TinyWorkload w;
  const size_t n = w.list.size();
  const size_t b = n / 3;
  Rng rng(79);

  // Shared sample of sphere vectors for variance reduction.
  const int kSamples = 3000;
  std::vector<std::vector<double>> samples;
  samples.reserve(kSamples);
  for (int s = 0; s < kSamples; ++s) {
    samples.push_back(RandomSphereVector(n, rng));
  }
  auto mean_penalty = [&](const std::vector<bool>& used) {
    double mean = 0.0;
    for (const auto& v : samples) mean += w.PenaltyForSubset(used, v);
    return mean / kSamples;
  };

  const double best = mean_penalty(w.BiggestBSet(b));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> perm(n);
    std::iota(perm.begin(), perm.end(), size_t{0});
    rng.Shuffle(perm);
    std::vector<bool> used(n, false);
    for (size_t i = 0; i < b; ++i) used[perm[i]] = true;
    // Exact expectations obey the theorem; Monte Carlo needs a little slack.
    EXPECT_GE(mean_penalty(used), best * 0.98);
  }
}

TEST(Theorem2Test, ExactExpectationComparisonViaTraceFormula) {
  // Using the closed-form expectation (no Monte Carlo noise), biggest-B is
  // at least as good as every random subset, at every B.
  TinyWorkload w;
  const size_t n = w.list.size();
  Rng rng(83);
  for (size_t b = 0; b <= n; b += std::max<size_t>(1, n / 7)) {
    std::vector<bool> best = w.BiggestBSet(b);
    double best_expected = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (!best[i]) best_expected += w.importance[i];
    }
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<size_t> perm(n);
      std::iota(perm.begin(), perm.end(), size_t{0});
      rng.Shuffle(perm);
      std::vector<bool> used(n, false);
      for (size_t i = 0; i < b; ++i) used[perm[i]] = true;
      double expected = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (!used[i]) expected += w.importance[i];
      }
      EXPECT_GE(expected + 1e-12, best_expected) << "B=" << b;
    }
  }
}

}  // namespace
}  // namespace wavebatch
