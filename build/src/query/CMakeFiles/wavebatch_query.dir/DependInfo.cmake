
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/batch.cc" "src/query/CMakeFiles/wavebatch_query.dir/batch.cc.o" "gcc" "src/query/CMakeFiles/wavebatch_query.dir/batch.cc.o.d"
  "/root/repo/src/query/derived.cc" "src/query/CMakeFiles/wavebatch_query.dir/derived.cc.o" "gcc" "src/query/CMakeFiles/wavebatch_query.dir/derived.cc.o.d"
  "/root/repo/src/query/partition.cc" "src/query/CMakeFiles/wavebatch_query.dir/partition.cc.o" "gcc" "src/query/CMakeFiles/wavebatch_query.dir/partition.cc.o.d"
  "/root/repo/src/query/polynomial.cc" "src/query/CMakeFiles/wavebatch_query.dir/polynomial.cc.o" "gcc" "src/query/CMakeFiles/wavebatch_query.dir/polynomial.cc.o.d"
  "/root/repo/src/query/range.cc" "src/query/CMakeFiles/wavebatch_query.dir/range.cc.o" "gcc" "src/query/CMakeFiles/wavebatch_query.dir/range.cc.o.d"
  "/root/repo/src/query/range_sum.cc" "src/query/CMakeFiles/wavebatch_query.dir/range_sum.cc.o" "gcc" "src/query/CMakeFiles/wavebatch_query.dir/range_sum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cube/CMakeFiles/wavebatch_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wavebatch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
