#ifndef WAVEBATCH_BASELINES_COMPRESSED_VIEW_H_
#define WAVEBATCH_BASELINES_COMPRESSED_VIEW_H_

#include <memory>

#include "storage/memory_store.h"

namespace wavebatch {

/// The *data-approximation* alternative the paper argues against
/// (Chakrabarti et al. [1], Vitter & Wang [17]): keep only the C
/// largest-magnitude coefficients of the transformed data as a
/// precomputed synopsis and answer every query against it. The synopsis
/// is tuned once, offline; it cannot adapt to a penalty function supplied
/// at query time — the contrast bench_baselines measures against
/// Batch-Biggest-B's query-side approximation.
///
/// Returns a HashStore holding the `keep` entries of `store` with the
/// largest |value| (all entries if `keep` >= NumNonZero()).
std::unique_ptr<HashStore> CompressTopCoefficients(
    const CoefficientStore& store, uint64_t keep);

}  // namespace wavebatch

#endif  // WAVEBATCH_BASELINES_COMPRESSED_VIEW_H_
