# Empty dependencies file for bounded_workspace_test.
# This may be replaced when dependencies are built.
