#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "storage/block_store.h"
#include "storage/coefficient_store.h"
#include "storage/dense_store.h"
#include "storage/memory_store.h"
#include "telemetry/metrics.h"

namespace wavebatch {
namespace {

TEST(HashStoreTest, PeekAbsentIsZero) {
  HashStore store;
  EXPECT_EQ(store.Peek(42), 0.0);
  EXPECT_EQ(store.NumNonZero(), 0u);
}

TEST(HashStoreTest, AddAndPeek) {
  HashStore store;
  store.Add(1, 2.0);
  store.Add(1, 3.0);
  store.Add(2, -1.0);
  EXPECT_DOUBLE_EQ(store.Peek(1), 5.0);
  EXPECT_DOUBLE_EQ(store.Peek(2), -1.0);
  EXPECT_EQ(store.NumNonZero(), 2u);
}

TEST(HashStoreTest, AddToZeroErases) {
  HashStore store;
  store.Add(1, 2.0);
  store.Add(1, -2.0);
  EXPECT_EQ(store.NumNonZero(), 0u);
}

TEST(HashStoreTest, BulkLoadFromSparseVec) {
  SparseVec v = SparseVec::FromUnsorted({{1, 1.0}, {9, 2.0}});
  HashStore store(v);
  EXPECT_EQ(store.NumNonZero(), 2u);
  EXPECT_DOUBLE_EQ(store.Peek(9), 2.0);
}

TEST(HashStoreTest, FetchCountsRetrievalsIntoSink) {
  HashStore store;
  store.Add(1, 2.0);
  IoStats io;
  EXPECT_DOUBLE_EQ(store.Fetch(1, &io).value(), 2.0);
  EXPECT_DOUBLE_EQ(store.Fetch(5, &io).value(), 0.0);  // absent still costs
  EXPECT_EQ(io.retrievals, 2u);
}

TEST(HashStoreTest, FetchWithoutSinkIsUncounted) {
  // Accounting is per-call now: with no sink there is nothing to charge,
  // and separate sinks never see each other's traffic.
  HashStore store;
  store.Add(1, 2.0);
  EXPECT_DOUBLE_EQ(store.Fetch(1).value(), 2.0);
  IoStats io;
  store.Fetch(1, &io);
  EXPECT_EQ(io.retrievals, 1u);
}

TEST(IoStatsTest, AccumulateAndCompare) {
  IoStats a, b;
  a.retrievals = 3;
  a.block_reads = 1;
  b.retrievals = 2;
  b.block_hits = 4;
  a += b;
  EXPECT_EQ(a.retrievals, 5u);
  EXPECT_EQ(a.block_reads, 1u);
  EXPECT_EQ(a.block_hits, 4u);
  IoStats c = a;
  EXPECT_EQ(a, c);
  c.Reset();
  EXPECT_EQ(c, IoStats{});
}

TEST(HashStoreTest, SumAbs) {
  HashStore store;
  store.Add(1, 3.0);
  store.Add(2, -4.0);
  EXPECT_DOUBLE_EQ(store.SumAbs(), 7.0);
}

TEST(DenseStoreTest, ZeroInitialized) {
  DenseStore store(16);
  EXPECT_EQ(store.capacity(), 16u);
  EXPECT_EQ(store.Peek(7), 0.0);
  EXPECT_EQ(store.NumNonZero(), 0u);
}

TEST(DenseStoreTest, AddPeekFetch) {
  DenseStore store(8);
  store.Add(3, 1.5);
  store.Add(3, 1.5);
  EXPECT_DOUBLE_EQ(store.Peek(3), 3.0);
  IoStats io;
  EXPECT_DOUBLE_EQ(store.Fetch(3, &io).value(), 3.0);
  EXPECT_EQ(io.retrievals, 1u);
  EXPECT_EQ(store.NumNonZero(), 1u);
  EXPECT_DOUBLE_EQ(store.SumAbs(), 3.0);
}

TEST(DenseStoreTest, FetchOutOfCapacityIsStatusNotAbort) {
  DenseStore store(8);
  IoStats io;
  Result<double> value = store.Fetch(8, &io);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kOutOfRange);
  // A failed fetch retrieved nothing, so it charges nothing.
  EXPECT_EQ(io.retrievals, 0u);
}

TEST(DenseStoreTest, FetchBatchOutOfCapacityChargesNothing) {
  DenseStore store(8);
  store.Add(2, 1.0);
  std::vector<uint64_t> keys = {2, 99};
  std::vector<double> out(keys.size());
  IoStats io;
  Status status = store.FetchBatch(keys, out, &io);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  // All-or-nothing: even the in-range key is uncharged.
  EXPECT_EQ(io.retrievals, 0u);
}

TEST(DenseStoreTest, BulkLoadValues) {
  DenseStore store(std::vector<double>{0.0, 1.0, -2.0});
  EXPECT_EQ(store.capacity(), 3u);
  EXPECT_EQ(store.NumNonZero(), 2u);
  EXPECT_DOUBLE_EQ(store.SumAbs(), 3.0);
}

std::unique_ptr<CoefficientStore> MakeInner() {
  auto inner = std::make_unique<HashStore>();
  for (uint64_t k = 0; k < 64; ++k) inner->Add(k, static_cast<double>(k + 1));
  return inner;
}

TEST(BlockStoreTest, FirstTouchIsBlockRead) {
  BlockStore store(MakeInner(), /*block_size=*/8, /*cache_blocks=*/4);
  IoStats io;
  store.Fetch(0, &io);
  EXPECT_EQ(io.retrievals, 1u);
  EXPECT_EQ(io.block_reads, 1u);
  EXPECT_EQ(io.block_hits, 0u);
}

TEST(BlockStoreTest, SameBlockHits) {
  BlockStore store(MakeInner(), 8, 4);
  IoStats io;
  store.Fetch(0, &io);
  store.Fetch(7, &io);  // same block [0,8)
  store.Fetch(3, &io);
  EXPECT_EQ(io.block_reads, 1u);
  EXPECT_EQ(io.block_hits, 2u);
}

TEST(BlockStoreTest, LruEviction) {
  BlockStore store(MakeInner(), 8, 2);
  IoStats io;
  store.Fetch(0, &io);   // block 0 (miss)
  store.Fetch(8, &io);   // block 1 (miss)
  store.Fetch(16, &io);  // block 2 (miss, evicts block 0)
  store.Fetch(0, &io);   // block 0 again (miss)
  EXPECT_EQ(io.block_reads, 4u);
  EXPECT_EQ(io.block_hits, 0u);
}

TEST(BlockStoreTest, LruTouchRefreshes) {
  BlockStore store(MakeInner(), 8, 2);
  IoStats io;
  store.Fetch(0, &io);   // block 0 (miss)            cache: {0}
  store.Fetch(8, &io);   // block 1 (miss)            cache: {1,0}
  store.Fetch(1, &io);   // block 0 (hit, refreshed)  cache: {0,1}
  store.Fetch(16, &io);  // block 2 (miss, evicts 1)  cache: {2,0}
  store.Fetch(2, &io);   // block 0 (hit)
  EXPECT_EQ(io.block_reads, 3u);
  EXPECT_EQ(io.block_hits, 2u);
}

TEST(BlockStoreTest, LruGaugesTrackOccupancyAndCapacity) {
  // The occupancy/capacity gauge pair is last-write-wins per (name, store)
  // label set; constructing the store re-publishes capacity and every touch
  // section republishes occupancy, so reading after each fetch is exact.
  telemetry::MetricsRegistry::Enable();
  BlockStore store(MakeInner(), /*block_size=*/8, /*cache_blocks=*/2);
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::Default();
  telemetry::Gauge* occupancy = registry.GetGauge(
      "wavebatch_block_store_lru_occupancy_blocks", {{"store", store.name()}});
  telemetry::Gauge* capacity = registry.GetGauge(
      "wavebatch_block_store_lru_capacity_blocks", {{"store", store.name()}});
  EXPECT_DOUBLE_EQ(capacity->Value(), 2.0);

  store.Fetch(0);  // block 0
  EXPECT_DOUBLE_EQ(occupancy->Value(), 1.0);
  store.Fetch(8);  // block 1 — buffer full
  EXPECT_DOUBLE_EQ(occupancy->Value(), 2.0);
  store.Fetch(16);  // block 2 evicts block 0 — occupancy stays at capacity
  EXPECT_DOUBLE_EQ(occupancy->Value(), 2.0);

  std::vector<uint64_t> keys = {24, 25, 32};  // batch path updates it too
  std::vector<double> out(keys.size());
  ASSERT_TRUE(store.FetchBatch(keys, out).ok());
  EXPECT_DOUBLE_EQ(occupancy->Value(), 2.0);
}

TEST(BlockStoreTest, UnbufferedEveryBlockAccessReads) {
  BlockStore store(MakeInner(), 8, 0);
  IoStats io;
  store.Fetch(0, &io);
  store.Fetch(1, &io);
  store.Fetch(2, &io);
  EXPECT_EQ(io.block_reads, 3u);
  EXPECT_EQ(io.block_hits, 0u);
}

TEST(BlockStoreTest, LruSharedAcrossSinks) {
  // The buffer pool is store state; the counters are per-caller. A second
  // caller with its own sink still hits the cache the first caller warmed.
  BlockStore store(MakeInner(), 8, 2);
  IoStats first, second;
  store.Fetch(0, &first);  // block 0 (miss)
  store.Fetch(1, &second);  // block 0 (hit via the shared cache)
  EXPECT_EQ(first.block_reads, 1u);
  EXPECT_EQ(first.block_hits, 0u);
  EXPECT_EQ(second.block_reads, 0u);
  EXPECT_EQ(second.block_hits, 1u);
}

TEST(BlockStoreTest, DelegatesValuesAndUpdates) {
  BlockStore store(MakeInner(), 8, 2);
  EXPECT_DOUBLE_EQ(store.Peek(5), 6.0);
  EXPECT_DOUBLE_EQ(store.Fetch(5).value(), 6.0);
  store.Add(5, 1.0);
  EXPECT_DOUBLE_EQ(store.Peek(5), 7.0);
  EXPECT_EQ(store.NumNonZero(), 64u);
  EXPECT_EQ(store.name(), "blocked(hash)");
}

// ---------------------------------------------------------------------------
// FetchBatch: behaviorally equivalent to a scalar Fetch loop on every store
// (same values, same retrieval count); BlockStore additionally reads each
// distinct block at most once per call.

/// Runs the same key sequence through `batch_store` (one FetchBatch) and
/// `scalar_store` (a Fetch loop) — the two stores must hold identical data.
void ExpectBatchMatchesScalar(CoefficientStore& batch_store,
                              CoefficientStore& scalar_store,
                              const std::vector<uint64_t>& keys) {
  IoStats batch_io, scalar_io;
  std::vector<double> batched(keys.size());
  ASSERT_TRUE(batch_store.FetchBatch(keys, batched, &batch_io).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(batched[i], scalar_store.Fetch(keys[i], &scalar_io).value())
        << "key " << keys[i];
  }
  EXPECT_EQ(batch_io.retrievals, scalar_io.retrievals);
  EXPECT_EQ(batch_io.retrievals, keys.size());
}

TEST(FetchBatchTest, HashStoreMatchesScalarLoop) {
  HashStore a, b;
  for (uint64_t k = 0; k < 32; k += 2) {
    a.Add(k, static_cast<double>(k) * 0.5);
    b.Add(k, static_cast<double>(k) * 0.5);
  }
  // Unsorted, with duplicates and absent keys.
  ExpectBatchMatchesScalar(a, b, {9, 2, 2, 31, 0, 30, 2});
}

TEST(FetchBatchTest, DenseStoreMatchesScalarLoop) {
  std::vector<double> values(64);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = (i % 3 == 0) ? 0.0 : static_cast<double>(i);
  }
  DenseStore a(values), b(values);
  ExpectBatchMatchesScalar(a, b, {63, 0, 17, 17, 5, 44});
}

TEST(FetchBatchTest, BlockStoreMatchesScalarValuesAndRetrievals) {
  BlockStore a(MakeInner(), 8, 4), b(MakeInner(), 8, 4);
  ExpectBatchMatchesScalar(a, b, {0, 7, 63, 8, 9, 1, 1});
}

TEST(FetchBatchTest, EmptyBatchIsFree) {
  HashStore store;
  IoStats io;
  store.FetchBatch({}, {}, &io);
  EXPECT_EQ(io.retrievals, 0u);
}

TEST(FetchBatchTest, BlockStoreReadsEachDistinctBlockOnce) {
  // 16 coefficients spanning 2 blocks, unbuffered: a scalar loop would
  // charge 16 block reads; one batched call charges exactly 2.
  BlockStore store(MakeInner(), /*block_size=*/8, /*cache_blocks=*/0);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 16; ++k) keys.push_back(k);
  std::vector<double> out(keys.size());
  IoStats io;
  store.FetchBatch(keys, out, &io);
  EXPECT_EQ(io.retrievals, 16u);
  EXPECT_EQ(io.block_reads, 2u);
  EXPECT_EQ(io.block_hits, 0u);
}

TEST(FetchBatchTest, BlockStoreBatchStillHitsWarmCache) {
  BlockStore store(MakeInner(), 8, 4);
  IoStats io;
  store.Fetch(0, &io);  // warms block 0
  std::vector<uint64_t> keys = {1, 2, 3, 8};
  std::vector<double> out(keys.size());
  store.FetchBatch(keys, out, &io);
  // Block 0 is a (single) hit, block 1 a (single) read.
  EXPECT_EQ(io.block_reads, 2u);  // initial Fetch + block 1
  EXPECT_EQ(io.block_hits, 1u);
}

TEST(BlockStoreTest, FailedInnerFetchTouchesNoCountersOrCache) {
  // Dense inner with capacity 8: key 99 fails. The failed fetch must not
  // warm the LRU, count a block read, or charge a retrieval.
  BlockStore store(std::make_unique<DenseStore>(8), /*block_size=*/8,
                   /*cache_blocks=*/4);
  IoStats io;
  Result<double> value = store.Fetch(99, &io);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(io, IoStats{});

  std::vector<uint64_t> keys = {0, 99};
  std::vector<double> out(keys.size());
  EXPECT_FALSE(store.FetchBatch(keys, out, &io).ok());
  EXPECT_EQ(io, IoStats{});
}

TEST(FetchBatchTest, DuplicateKeysEachCountAsRetrieval) {
  // Duplicates cost one retrieval each — identical to the scalar loop, so
  // batching can never *undercount* the paper's metric.
  HashStore store;
  store.Add(3, 1.5);
  std::vector<uint64_t> keys = {3, 3, 3};
  std::vector<double> out(keys.size());
  IoStats io;
  store.FetchBatch(keys, out, &io);
  EXPECT_EQ(io.retrievals, 3u);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 1.5);
}

}  // namespace
}  // namespace wavebatch
