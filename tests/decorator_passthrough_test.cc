// Decorator pass-through audit: every store decorator must forward every
// public entry point faithfully. For each decorator wrapped around a
// sharded (S=2) plane, every read path — Peek, Fetch, FetchBatch,
// FetchBatchRouted (with hints from the decorator's own router), and the
// aggregate scans — must produce values identical to the naked inner
// store, with identical IoStats (identical retrievals for all decorators;
// BlockStore's block counters are its own sub-model, additive on top and
// asserted separately). This is the regression net for the classic
// decorator bug: adding a new entry point to the base class and forgetting
// to forward it in one wrapper, which silently drops the wrapper (or the
// batch optimization) from that path.

#include <memory>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "gtest/gtest.h"
#include "storage/block_store.h"
#include "storage/fault_injection_store.h"
#include "storage/key_router.h"
#include "storage/memory_store.h"
#include "storage/sharded_store.h"
#include "storage/versioned_store.h"
#include "strategy/wavelet_strategy.h"

namespace wavebatch {
namespace {

/// The probe workload: every nonzero key of the reference store plus a
/// sprinkle of absent keys (decorators must forward zeros too).
struct Probe {
  std::vector<uint64_t> keys;
  std::vector<double> expected;
};

Probe MakeProbe(const CoefficientStore& reference) {
  Probe probe;
  reference.ForEachNonZero([&](uint64_t key, double value) {
    probe.keys.push_back(key);
    probe.expected.push_back(value);
  });
  const uint64_t max_key = probe.keys.empty() ? 0 : probe.keys.back();
  for (uint64_t key = max_key + 1; key <= max_key + 5; ++key) {
    probe.keys.push_back(key);
    probe.expected.push_back(0.0);
  }
  return probe;
}

/// Exercises every public read entry point of `store` and checks values
/// against `probe` and I/O accounting against `expect_io` (retrievals
/// always; block counters only when `check_blocks`).
void AuditReadPaths(const CoefficientStore& store, const Probe& probe,
                    const IoStats& expect_io, bool check_blocks,
                    const char* label) {
  SCOPED_TRACE(label);

  // Scalar counted path.
  IoStats scalar_io;
  for (size_t i = 0; i < probe.keys.size(); ++i) {
    Result<double> value = store.Fetch(probe.keys[i], &scalar_io);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, probe.expected[i]) << "key " << probe.keys[i];
    EXPECT_EQ(store.Peek(probe.keys[i]), probe.expected[i]);
  }
  EXPECT_EQ(scalar_io.retrievals, expect_io.retrievals);

  // Batched counted path.
  IoStats batch_io;
  std::vector<double> out(probe.keys.size(), -1.0);
  ASSERT_TRUE(store.FetchBatch(probe.keys, out, &batch_io).ok());
  for (size_t i = 0; i < probe.keys.size(); ++i) {
    EXPECT_EQ(out[i], probe.expected[i]) << "key " << probe.keys[i];
  }
  EXPECT_EQ(batch_io.retrievals, expect_io.retrievals);
  if (check_blocks) {
    EXPECT_EQ(batch_io.block_reads, expect_io.block_reads);
    EXPECT_EQ(batch_io.block_hits, expect_io.block_hits);
  }

  // Routed batched path, hints from the decorator's own router — the
  // entry point most recently added to the seam, and the easiest to
  // forget in a wrapper.
  if (const KeyRouter* router = store.router(); router != nullptr) {
    std::vector<uint32_t> shards;
    for (uint64_t key : probe.keys) shards.push_back(router->ShardOf(key));
    IoStats routed_io;
    std::fill(out.begin(), out.end(), -1.0);
    ASSERT_TRUE(store.FetchBatchRouted(probe.keys, shards, out, &routed_io)
                    .ok());
    for (size_t i = 0; i < probe.keys.size(); ++i) {
      EXPECT_EQ(out[i], probe.expected[i]) << "key " << probe.keys[i];
    }
    EXPECT_EQ(routed_io.retrievals, expect_io.retrievals);
    if (check_blocks) {
      EXPECT_EQ(routed_io.block_reads, expect_io.block_reads);
      EXPECT_EQ(routed_io.block_hits, expect_io.block_hits);
    }
  }

  // Aggregate scans.
  uint64_t nnz = 0;
  double recomputed_sum_abs = 0.0;
  store.ForEachNonZero([&](uint64_t, double value) {
    ++nnz;
    recomputed_sum_abs += value < 0 ? -value : value;
  });
  EXPECT_EQ(store.NumNonZero(), nnz);
  EXPECT_GT(nnz, 0u);
  EXPECT_NEAR(store.SumAbs(), recomputed_sum_abs,
              1e-9 * (1.0 + recomputed_sum_abs));
}

class DecoratorPassthroughTest : public ::testing::Test {
 protected:
  DecoratorPassthroughTest() : schema_(Schema::Uniform(2, 16)) {
    WaveletStrategy strategy(schema_, WaveletKind::kHaar);
    Relation rel = MakeUniformRelation(schema_, 400, 13);
    reference_ = strategy.BuildStore(rel.FrequencyDistribution());
    probe_ = MakeProbe(*reference_);
  }

  /// A two-shard plane holding the reference coefficients; the inner store
  /// every decorator wraps, so the audit covers forwarding *through* a
  /// router-bearing store.
  std::unique_ptr<ShardedStore> MakeShardedInner() const {
    std::vector<std::unique_ptr<HashStore>> hash_shards;
    for (int s = 0; s < 2; ++s) {
      hash_shards.push_back(std::make_unique<HashStore>());
    }
    uint64_t max_key = 0;
    reference_->ForEachNonZero(
        [&](uint64_t key, double) { max_key = std::max(max_key, key); });
    KeyRouter router = KeyRouter::Uniform(max_key + 1, 2);
    reference_->ForEachNonZero([&](uint64_t key, double value) {
      hash_shards[router.ShardOf(key)]->Add(key, value);
    });
    std::vector<std::unique_ptr<CoefficientStore>> shards;
    for (auto& shard : hash_shards) shards.push_back(std::move(shard));
    return std::make_unique<ShardedStore>(std::move(shards), router,
                                          ShardedStoreOptions{});
  }

  IoStats PlainIo() const {
    IoStats io;
    io.retrievals = probe_.keys.size();
    return io;
  }

  Schema schema_;
  std::unique_ptr<CoefficientStore> reference_;
  Probe probe_;
};

TEST_F(DecoratorPassthroughTest, NakedShardedPlaneIsTheBaseline) {
  auto inner = MakeShardedInner();
  ASSERT_NE(inner->router(), nullptr);
  AuditReadPaths(*inner, probe_, PlainIo(), /*check_blocks=*/true, "sharded");
}

TEST_F(DecoratorPassthroughTest, HealthyFaultInjectionStoreIsTransparent) {
  FaultInjectionStore store(MakeShardedInner());
  ASSERT_NE(store.router(), nullptr) << "router must survive the wrapper";
  AuditReadPaths(store, probe_, PlainIo(), /*check_blocks=*/true, "faulty");
  EXPECT_EQ(store.injected_failures(), 0u);
}

TEST_F(DecoratorPassthroughTest, BlockStoreForwardsValuesAndAddsItsSubModel) {
  constexpr uint64_t kBlockSize = 8;
  BlockStore store(MakeShardedInner(), kBlockSize, /*cache_blocks=*/0);
  ASSERT_NE(store.router(), nullptr);

  // Values and retrievals identical to the inner plane; block counters are
  // the wrapper's own sub-model, checked for the batched paths: unbuffered
  // batches read each distinct block exactly once.
  IoStats expected = PlainIo();
  std::vector<bool> seen;
  for (uint64_t key : probe_.keys) {
    const uint64_t block = key / kBlockSize;
    if (block >= seen.size()) seen.resize(block + 1, false);
    if (!seen[block]) {
      seen[block] = true;
      ++expected.block_reads;
    }
  }
  AuditReadPaths(store, probe_, expected, /*check_blocks=*/true, "blocked");
}

TEST_F(DecoratorPassthroughTest, SnapshotStoreWithNullOverlayIsTransparent) {
  std::shared_ptr<const CoefficientStore> inner = MakeShardedInner();
  SnapshotStore store(/*epoch=*/0, inner, /*overlay=*/nullptr);
  ASSERT_EQ(store.router(), inner->router());
  AuditReadPaths(store, probe_, PlainIo(), /*check_blocks=*/true, "snapshot");
}

TEST_F(DecoratorPassthroughTest, SnapshotStoreAppliesItsOverlayOnEveryPath) {
  std::shared_ptr<const CoefficientStore> inner = MakeShardedInner();
  // Overlay: +1 on every third probed key, plus one key absent from the
  // base — every read path must see base ⊕ overlay.
  auto overlay = std::make_shared<DeltaOverlay>();
  Probe shifted = probe_;
  for (size_t i = 0; i < probe_.keys.size(); i += 3) {
    overlay->adds[probe_.keys[i]] = 1.0;
    shifted.expected[i] += 1.0;
  }
  SnapshotStore store(/*epoch=*/1, inner, overlay);
  AuditReadPaths(store, shifted, PlainIo(), /*check_blocks=*/true,
                 "snapshot+overlay");
}

TEST_F(DecoratorPassthroughTest, StackedDecoratorsComposeWithoutDoubleCount) {
  // The full stack the streaming fault tests use: fault injection over a
  // block simulation over a published snapshot over the sharded plane.
  // One retrieval per key, charged once, values intact end to end.
  auto snapshot = std::make_shared<SnapshotStore>(
      /*epoch=*/0, std::shared_ptr<const CoefficientStore>(MakeShardedInner()),
      nullptr);
  auto blocked = std::make_unique<BlockStore>(
      std::make_unique<FaultInjectionStore>(
          const_cast<CoefficientStore*>(
              static_cast<const CoefficientStore*>(snapshot.get()))),
      /*block_size=*/8, /*cache_blocks=*/0);
  AuditReadPaths(*blocked, probe_, PlainIo(), /*check_blocks=*/false,
                 "stacked");
}

TEST_F(DecoratorPassthroughTest, DecoratorsOverStableInnerAreTheirOwnSnapshot) {
  // Over an inner store that is its own snapshot (stable contents), the
  // decorator is stable too, so PinVersion stays null and callers use the
  // decorator directly.
  FaultInjectionStore faulty(MakeShardedInner());
  EXPECT_EQ(faulty.PinVersion(), nullptr);
  BlockStore blocked(MakeShardedInner(), 8, 0);
  EXPECT_EQ(blocked.PinVersion(), nullptr);
  std::shared_ptr<const CoefficientStore> inner = MakeShardedInner();
  SnapshotStore snapshot(0, inner, nullptr);
  EXPECT_EQ(snapshot.PinVersion(), nullptr)
      << "a snapshot is its own snapshot";
}

TEST_F(DecoratorPassthroughTest,
       FaultInjectionStoreForwardsPinVersionOverVersionedInner) {
  // The regression this guards: a decorator inheriting the base-class
  // PinVersion (null) over a VersionedStore left sessions un-pinned, so
  // epochs could advance mid-evaluation. The forwarded pin must (a) stay
  // decorated, (b) isolate the pinned view from later epochs, and
  // (c) share the fault state with the original wrapper.
  auto base = std::make_unique<HashStore>();
  reference_->ForEachNonZero(
      [&](uint64_t key, double value) { base->Add(key, value); });
  auto versioned = std::make_unique<VersionedStore>(std::move(base));
  VersionedStore* writer = versioned.get();
  FaultInjectionStore faulty(std::move(versioned));

  std::shared_ptr<const CoefficientStore> pinned = faulty.PinVersion();
  ASSERT_NE(pinned, nullptr)
      << "decorator over a versioned store must forward the pin";
  EXPECT_EQ(pinned->name().rfind("faulty(", 0), 0u)
      << "the pinned view must keep the decorator on the read path";

  // Every read path of the pinned view matches the reference (same values,
  // same accounting) — the decorated pin is a full store, not a shim.
  AuditReadPaths(*pinned, probe_, PlainIo(), /*check_blocks=*/false,
                 "pinned-faulty");

  // The pin isolates: a later epoch is invisible to the pinned view but
  // visible through the (un-pinned) decorator.
  const uint64_t probe_key = probe_.keys.front();
  const double old_value = probe_.expected.front();
  writer->Add(probe_key, 5.0);
  writer->Publish();
  IoStats io;
  Result<double> pinned_value = pinned->Fetch(probe_key, &io);
  ASSERT_TRUE(pinned_value.ok());
  EXPECT_EQ(*pinned_value, old_value);
  Result<double> live_value = faulty.Fetch(probe_key, &io);
  ASSERT_TRUE(live_value.ok());
  EXPECT_EQ(*live_value, old_value + 5.0);

  // Fault state is shared both ways: FailKey on the original faults the
  // pinned view, pinned fetches advance the shared ordinal, and Heal()
  // heals everything.
  const uint64_t fetches_so_far = faulty.fetch_count();
  EXPECT_GT(fetches_so_far, 0u) << "pinned fetches count on the shared state";
  faulty.FailKey(probe_key);
  EXPECT_FALSE(pinned->Fetch(probe_key, &io).ok());
  EXPECT_EQ(faulty.injected_failures(), 1u);
  faulty.Heal();
  EXPECT_TRUE(pinned->Fetch(probe_key, &io).ok());
}

TEST_F(DecoratorPassthroughTest,
       BlockStoreForwardsPinVersionAndSharesBufferPool) {
  auto base = std::make_unique<HashStore>();
  reference_->ForEachNonZero(
      [&](uint64_t key, double value) { base->Add(key, value); });
  BlockStore blocked(
      std::make_unique<VersionedStore>(std::move(base)),
      /*block_size=*/8, /*cache_blocks=*/64);

  std::shared_ptr<const CoefficientStore> pinned = blocked.PinVersion();
  ASSERT_NE(pinned, nullptr)
      << "decorator over a versioned store must forward the pin";
  EXPECT_EQ(pinned->name().rfind("blocked(", 0), 0u)
      << "the pinned view must keep the block model on the read path";

  // One buffer pool across original and pinned views (one medium, one
  // pool): a block warmed through the pinned view hits when read through
  // the original, and vice versa.
  const uint64_t key = probe_.keys.front();
  IoStats warm;
  ASSERT_TRUE(pinned->Fetch(key, &warm).ok());
  EXPECT_EQ(warm.block_reads, 1u);
  EXPECT_EQ(warm.block_hits, 0u);
  IoStats hit;
  ASSERT_TRUE(blocked.Fetch(key, &hit).ok());
  EXPECT_EQ(hit.block_reads, 0u);
  EXPECT_EQ(hit.block_hits, 1u) << "the pinned view must share the LRU pool";
}

}  // namespace
}  // namespace wavebatch
