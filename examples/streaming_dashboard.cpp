// A live dashboard over a streaming fact table. Tuples arrive while the
// dashboard refreshes: each refresh pins the latest published epoch of a
// VersionedStore, evaluates its range-sum batch progressively against that
// immutable snapshot, and is completely isolated from concurrent ingests —
// a background merge folds the accumulated deltas into the base plane
// without ever blocking a reader. The plan cache keys on the data epoch,
// so refreshes at the same epoch share a plan and a merge invalidates the
// superseded ones.
//
//   ./build/examples/streaming_dashboard

#include <cstdio>
#include <memory>
#include <vector>

#include "data/generators.h"
#include "engine/eval_plan.h"
#include "engine/eval_session.h"
#include "engine/plan_cache.h"
#include "penalty/sse.h"
#include "storage/versioned_store.h"
#include "strategy/wavelet_strategy.h"
#include "util/thread_pool.h"

using namespace wavebatch;

int main() {
  // A 64x64 two-attribute cube under a Haar wavelet synopsis.
  Schema schema = Schema::Uniform(2, 64);
  WaveletStrategy strategy(schema, WaveletKind::kHaar);

  // Historical data builds the base coefficient plane; the stream arrives
  // in refresh-sized chunks afterwards.
  Relation history = MakeUniformRelation(schema, 4000, 11);
  Relation stream = MakeUniformRelation(schema, 1200, 23);
  constexpr size_t kChunk = 300;

  VersionedStore store(strategy.BuildStore(history.FrequencyDistribution()));
  ThreadPool merge_pool(1);

  // The dashboard's panel: four quadrant counts plus the grand total.
  QueryBatch batch(schema);
  batch.Add(RangeSumQuery::Count(Range::Create(schema, {{0, 31}, {0, 31}}).value()));
  batch.Add(RangeSumQuery::Count(Range::Create(schema, {{32, 63}, {0, 31}}).value()));
  batch.Add(RangeSumQuery::Count(Range::Create(schema, {{0, 31}, {32, 63}}).value()));
  batch.Add(RangeSumQuery::Count(Range::Create(schema, {{32, 63}, {32, 63}}).value()));
  batch.Add(RangeSumQuery::Count(Range::All(schema)));

  auto sse = std::make_shared<SsePenalty>();
  PlanCache cache(8);

  // A viewer opens the dashboard before any stream data lands. Its session
  // pins epoch 0: nothing that happens below can change its answers.
  auto plan0 = cache.GetOrBuild(batch, strategy, sse, store.epoch());
  if (!plan0.ok()) return 1;
  EvalSession pinned(plan0.value(), store.PinVersion());

  std::printf("%-8s %-6s %-8s %10s %10s %10s %10s %10s\n", "refresh",
              "epoch", "delta", "q0", "q1", "q2", "q3", "total");
  Relation seen(schema);
  for (const Tuple& t : history.tuples()) seen.Add(t);

  size_t next = 0;
  for (int refresh = 1; refresh <= 4; ++refresh) {
    // Ingest one chunk of arrivals: each tuple becomes the sparse
    // coefficient delta of the paper's O((2δ+2)^d log^d N) update rule.
    for (size_t i = 0; i < kChunk && next < stream.tuples().size(); ++i) {
      const Tuple& t = stream.tuples()[next++];
      store.Ingest(strategy.TransformUpdate(t, 1.0).value());
      seen.Add(t);
    }
    const size_t delta_entries = store.delta_entries();
    store.Publish();

    // Refresh: plan at the published epoch (cached across refreshes that
    // share an epoch), evaluate against the pinned snapshot.
    auto plan = cache.GetOrBuild(batch, strategy, sse, store.epoch());
    if (!plan.ok()) return 1;
    EvalSession session(plan.value(), store.PinVersion());
    if (!session.RunToExact().ok()) return 1;
    std::printf("%-8d %-6llu %-8zu", refresh,
                static_cast<unsigned long long>(store.epoch()),
                delta_entries);
    for (size_t q = 0; q < batch.size(); ++q) {
      std::printf(" %10.1f", session.Estimates()[q]);
    }
    std::printf("\n");

    // Halfway through, fold the overlay into the base off-thread. Readers
    // keep answering from their pinned snapshots while the fold runs; the
    // merge publishes a fresh epoch, after which superseded plans are
    // dropped from the cache.
    if (refresh == 2) {
      store.StartBackgroundMerge(&merge_pool);
      store.WaitForMerge();
      const size_t dropped = cache.InvalidateStale(store.epoch());
      std::printf("merged -> epoch %llu (%zu stale plan%s dropped)\n",
                  static_cast<unsigned long long>(store.epoch()), dropped,
                  dropped == 1 ? "" : "s");
    }
  }

  // The early viewer still sees the pre-stream world, bit for bit.
  if (!pinned.RunToExact().ok()) return 1;
  std::printf("pinned@0 %-6s %-8s", "", "");
  for (size_t q = 0; q < batch.size(); ++q) {
    std::printf(" %10.1f", pinned.Estimates()[q]);
  }
  std::printf("\n");

  // Ground truth for the final refresh: brute force over everything seen.
  std::printf("%-24s", "exact");
  for (size_t q = 0; q < batch.size(); ++q) {
    std::printf(" %10.1f", batch.queries()[q].BruteForce(seen));
  }
  std::printf("\n");
  return 0;
}
