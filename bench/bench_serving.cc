// Serving-layer load harness: an open-loop traffic generator over
// QueryService. Arrivals are Poisson at --qps (open loop: the schedule is
// fixed up front and a slow server cannot push back on it — the honest way
// to measure latency under load); query templates are Zipf-popular, so hot
// batches hit the plan cache and overlap heavily in the shared-fetch
// cache. Two standard runs:
//
//   steady state  ./bench_serving --qps=500 --requests=200
//                 (queue stays shallow, zero sheds expected)
//   overload      ./bench_serving --qps=50000 --requests=500 --max_queue=16
//                 (admission backpressure sheds, survivors stay bounded)
//
// Reports per-run: completion/shed counts, latency percentiles, per-query
// session I/O vs backend I/O (the cross-session sharing factor), and the
// usual JSON + --metrics_out companions.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <string_view>
#include <thread>

#include "bench_common.h"
#include "penalty/sse.h"
#include "server/introspection.h"
#include "server/query_service.h"
#include "telemetry/export.h"
#include "util/random.h"
#include "util/table.h"

namespace wavebatch::bench {
namespace {

using server::QueryRequest;
using server::QueryResponse;
using server::QueryService;
using server::QueryServiceOptions;

int Main(int argc, char** argv) {
  Flags flags(argc, argv,
              "bench_serving: open-loop load against the query-serving "
              "front end\n"
              "  --qps=N           offered load, requests/second "
              "(default 500)\n"
              "  --requests=N      total offered requests (default 200)\n"
              "  --templates=N     distinct query batches (default 16)\n"
              "  --zipf=S          template popularity skew (default 1.1)\n"
              "  --workers=N       serving threads (default 2)\n"
              "  --max_queue=N     admission queue bound (default 256)\n"
              "  --max_live=N      concurrent sessions (default 8)\n"
              "  --quantum=N       coefficients per quantum (default 128)\n"
              "  --deadline_us=N   per-request deadline (default 0 = none)\n"
              "  --trace_out=path  write the Chrome trace of the run\n"
              "  --timeline_out=path  write per-request convergence "
              "timelines (JSON)\n"
              "  --json=path       JSON report (default "
              "BENCH_serving.json)\n" +
                  kCommonFlagsHelp);

  TemperatureDatasetOptions data_options = DataOptionsFromFlags(flags);
  // Serving benchmarks care about concurrency, not cube scale: default to a
  // laptop-sized slice unless the caller overrides.
  data_options.num_records =
      static_cast<uint64_t>(flags.Int("records", 200000));
  const uint64_t qps = static_cast<uint64_t>(flags.Int("qps", 500));
  const size_t num_requests = static_cast<size_t>(flags.Int("requests", 200));
  const size_t num_templates = static_cast<size_t>(flags.Int("templates", 16));
  const double zipf_s = flags.Double("zipf", 1.1);
  const size_t workers = static_cast<size_t>(flags.Int("workers", 2));

  Stopwatch total;
  std::cout << "building serving experiment (domain "
            << TemperatureSchema(data_options).ToString() << ", "
            << data_options.num_records << " records)..." << std::endl;
  Experiment exp(data_options, PartsFromFlags(flags), /*workload_seed=*/1234,
                 WaveletKind::kHaar);

  // Query templates: contiguous sub-batches of the partition workload, so
  // neighbours overlap in coefficient needs the way dashboard panels do.
  const size_t batch_size = std::max<size_t>(
      4, exp.workload.batch.size() / std::max<size_t>(1, num_templates));
  std::vector<QueryBatch> templates;
  for (size_t t = 0; t < num_templates; ++t) {
    QueryBatch batch(exp.cube.schema());
    for (size_t q = 0; q < batch_size; ++q) {
      batch.Add(exp.workload.batch.query(
          (t * batch_size + q) % exp.workload.batch.size()));
    }
    templates.push_back(std::move(batch));
  }

  std::shared_ptr<const CoefficientStore> store = std::move(exp.store);
  auto strategy = std::make_shared<WaveletStrategy>(exp.cube.schema(),
                                                    WaveletKind::kHaar);
  auto sse = std::make_shared<SsePenalty>();

  QueryServiceOptions service_options;
  service_options.max_queue_depth =
      static_cast<size_t>(flags.Int("max_queue", 256));
  service_options.max_live_sessions =
      static_cast<size_t>(flags.Int("max_live", 8));
  service_options.default_quantum =
      static_cast<size_t>(flags.Int("quantum", 128));
  QueryService service(store, strategy, service_options);
  service.Start(workers);

  // The open loop: arrival times are drawn up front (exponential gaps at
  // the offered rate) and submission sticks to that schedule no matter how
  // the server is doing.
  Rng rng(static_cast<uint64_t>(flags.Int("traffic_seed", 7)));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::chrono::steady_clock::time_point> arrivals;
  {
    double at_us = 0.0;
    for (size_t i = 0; i < num_requests; ++i) {
      // Inverse-CDF exponential inter-arrival with mean 1e6/qps.
      const double u = std::max(1e-12, 1.0 - rng.UniformDouble());
      at_us += -std::log(u) * (1e6 / static_cast<double>(qps));
      arrivals.push_back(
          t0 + std::chrono::microseconds(static_cast<int64_t>(at_us)));
    }
  }

  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  size_t failed = 0;
  size_t deadline_expired = 0;
  uint64_t session_retrievals = 0;
  std::vector<uint64_t> latencies_us;
  const std::string timeline_out = flags.Str("timeline_out", "");
  std::vector<QueryService::TimelineRecord> timelines;
  auto on_done = [&](QueryResponse response) {
    std::lock_guard<std::mutex> lock(mu);
    ++completed;
    if (!response.status.ok()) ++failed;
    if (response.deadline_expired) ++deadline_expired;
    session_retrievals += response.io.retrievals;
    latencies_us.push_back(
        static_cast<uint64_t>(std::max<int64_t>(0, response.latency.count())));
    if (!timeline_out.empty() && !response.timeline.empty()) {
      QueryService::TimelineRecord record;
      record.request_id = response.request_id;
      record.trace_id = response.trace_id;
      record.generation = response.generation;
      record.ok = response.status.ok();
      record.exact = response.exact;
      record.deadline_expired = response.deadline_expired;
      record.points = std::move(response.timeline);
      timelines.push_back(std::move(record));
    }
    cv.notify_all();
  };

  const auto deadline_us =
      std::chrono::microseconds(flags.Int("deadline_us", 0));
  size_t offered = 0;
  size_t shed = 0;
  for (size_t i = 0; i < num_requests; ++i) {
    std::this_thread::sleep_until(arrivals[i]);
    QueryRequest request(templates[rng.Zipf(num_templates, zipf_s)]);
    request.penalty = sse;
    request.deadline = deadline_us;
    ++offered;
    if (!service.Submit(request, on_done).ok()) ++shed;
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == offered - shed; });
  }
  service.Stop();
  const double wall_s = total.ElapsedSeconds();

  // Request attribution: the fraction of backend fetch spans carrying a
  // request id — with tracing on, every store_fetch_batch a quantum causes
  // should attribute to the request whose quantum ran it.
  uint64_t fetch_spans = 0;
  uint64_t attributed_fetch_spans = 0;
  for (const telemetry::SpanEvent& span :
       telemetry::MetricsRegistry::Default().Spans()) {
    if (std::string_view(span.name) != "store_fetch_batch") continue;
    ++fetch_spans;
    if (span.request_id != 0) ++attributed_fetch_spans;
  }
  const double attribution_pct =
      fetch_spans == 0 ? 0.0
                       : 100.0 * static_cast<double>(attributed_fetch_spans) /
                             static_cast<double>(fetch_spans);

  const std::string trace_out = flags.Str("trace_out", "");
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary);
    out << telemetry::ExportChromeTrace();
    if (!out) {
      std::cerr << "failed to write " << trace_out << std::endl;
      return 1;
    }
  }
  if (!timeline_out.empty()) {
    std::ofstream out(timeline_out, std::ios::binary);
    out << server::TimelinesJson(timelines);
    if (!out) {
      std::cerr << "failed to write " << timeline_out << std::endl;
      return 1;
    }
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct = [&](double p) -> uint64_t {
    if (latencies_us.empty()) return 0;
    const size_t idx = std::min(latencies_us.size() - 1,
                                static_cast<size_t>(p * latencies_us.size()));
    return latencies_us[idx];
  };
  const uint64_t backend_keys = service.shared_misses();
  const uint64_t warm_keys = service.shared_hits();
  const double per_query_session =
      completed == 0 ? 0.0
                     : static_cast<double>(session_retrievals) / completed;
  const double per_query_backend =
      completed == 0 ? 0.0 : static_cast<double>(backend_keys) / completed;

  Table table({"metric", "value", "notes"});
  table.AddRow({"offered", std::to_string(offered),
                std::to_string(qps) + " qps open loop"});
  table.AddRow({"completed", std::to_string(completed), ""});
  table.AddRow({"shed", std::to_string(shed), "admission backpressure"});
  table.AddRow({"failed", std::to_string(failed), "non-OK responses"});
  table.AddRow({"deadline_expired", std::to_string(deadline_expired),
                "approximate completions"});
  table.AddRow({"latency_p50_us", std::to_string(pct(0.50)), ""});
  table.AddRow({"latency_p95_us", std::to_string(pct(0.95)), ""});
  table.AddRow({"latency_p99_us", std::to_string(pct(0.99)), ""});
  table.AddRow({"session_io_per_query", FormatDouble(per_query_session, 2),
                "paper cost model (unchanged by sharing)"});
  table.AddRow({"backend_io_per_query", FormatDouble(per_query_backend, 2),
                "shared-cache misses / completed"});
  table.AddRow({"warm_fetches", std::to_string(warm_keys),
                "retrievals served from the shared cache"});
  table.AddRow({"fetch_attribution_pct", FormatDouble(attribution_pct, 4),
                std::to_string(attributed_fetch_spans) + "/" +
                    std::to_string(fetch_spans) +
                    " backend fetch spans carry a request id"});
  std::cout << "\nServing under open-loop load\n";
  table.Print(std::cout);
  std::cout << "elapsed: " << FormatDouble(wall_s, 3) << "s\n";

  const std::string csv = flags.Str("csv", "");
  if (!csv.empty() && !table.WriteCsv(csv)) {
    std::cerr << "failed to write " << csv << std::endl;
    return 1;
  }

  const double elapsed_ns = wall_s * 1e9;
  std::map<std::string, std::string> params = {
      {"qps", std::to_string(qps)},
      {"requests", std::to_string(num_requests)},
      {"templates", std::to_string(num_templates)},
      {"zipf", FormatDouble(zipf_s, 2)},
      {"workers", std::to_string(workers)}};
  BenchJson json;
  auto add = [&](const std::string& name, uint64_t value) {
    std::map<std::string, std::string> p = params;
    json.Add("serving_" + name, p, elapsed_ns, value);
  };
  add("completed", completed);
  add("shed", shed);
  add("failed", failed);
  add("latency_p50_us", pct(0.50));
  add("latency_p95_us", pct(0.95));
  add("latency_p99_us", pct(0.99));
  add("session_io", session_retrievals);
  add("backend_io", backend_keys);
  add("warm_fetches", warm_keys);
  add("fetch_spans", fetch_spans);
  add("attributed_fetch_spans", attributed_fetch_spans);
  if (!json.Write(flags.Str("json", "BENCH_serving.json"))) {
    std::cerr << "failed to write json report" << std::endl;
    return 1;
  }
  if (!WriteMetricsOut(flags)) return 1;
  // Exit contract for CI: failures (non-OK responses) are a build breaker;
  // sheds are load-dependent and reported, not judged.
  return failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace wavebatch::bench

int main(int argc, char** argv) { return wavebatch::bench::Main(argc, argv); }
