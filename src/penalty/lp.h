#ifndef WAVEBATCH_PENALTY_LP_H_
#define WAVEBATCH_PENALTY_LP_H_

#include "penalty/penalty.h"

namespace wavebatch {

/// The Lp norm p(e) = (Σ|e_i|^p)^{1/p} for 1 <= p <= infinity — the family
/// Corollary 1 covers: using it as the importance function minimizes the
/// worst-case Lp error of every progressive step. Norms are homogeneous of
/// degree 1 and convex, hence valid structural error penalties.
class LpPenalty : public PenaltyFunction {
 public:
  /// `p` >= 1; use LpPenalty::Infinity() for the max norm.
  explicit LpPenalty(double p);

  /// The L∞ (max) norm.
  static LpPenalty Infinity();

  double Apply(std::span<const double> e) const override;
  double HomogeneityDegree() const override { return 1.0; }
  std::string name() const override;
  std::string Fingerprint() const override;

  double p() const { return p_; }
  bool is_infinity() const { return is_infinity_; }

 private:
  LpPenalty() : p_(0), is_infinity_(true) {}

  double p_;
  bool is_infinity_ = false;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_PENALTY_LP_H_
