#ifndef WAVEBATCH_UTIL_CPU_FEATURES_H_
#define WAVEBATCH_UTIL_CPU_FEATURES_H_

#include <optional>
#include <string>

namespace wavebatch {

/// Execution tiers of the apply/gather kernels, ordered by preference. Every
/// tier computes bit-identical results (the SIMD tiers vectorize the
/// multiply and the value gather but preserve the scalar path's ordered,
/// uncontracted accumulation), so tier selection is purely a speed choice —
/// never a correctness or reproducibility one.
enum class KernelTier {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Lower-case tier name ("scalar" / "avx2" / "avx512") — stamped into bench
/// report contexts and compared by tools/bench_compare.
const char* KernelTierName(KernelTier tier);

/// Runtime CPU capability (cached after the first query). False on non-x86
/// targets and on compilers without __builtin_cpu_supports.
bool CpuHasAvx2();
bool CpuHasAvx512();

/// True when the per-ISA kernel translation units for `tier` were compiled
/// with real intrinsics (CMake's compile checks passed). kScalar is always
/// compiled.
bool KernelTierCompiled(KernelTier tier);

/// True when SIMD tiers are disabled wholesale: either the tree was built
/// with -DWAVEBATCH_FORCE_SCALAR (CMake option of the same name) or the
/// WAVEBATCH_FORCE_SCALAR environment variable is set non-empty and not "0"
/// — the runtime escape hatch for bisecting miscompiles on exotic hosts.
bool ForceScalarRequested();

/// A tier is usable when it is compiled in, the CPU supports it, and scalar
/// is not being forced. kScalar is always usable.
bool KernelTierUsable(KernelTier tier);

/// The fastest usable tier — what dispatch picks when the caller does not
/// request a specific tier. Honors the process-wide override below.
KernelTier BestKernelTier();

/// Pins BestKernelTier() to `tier` (nullopt restores detection). For the
/// equivalence tests and benchmark A/B axes — every dispatch point in the
/// process (session apply kernels AND store gather paths) follows it, so
/// pinning kScalar measures/exercises the genuine all-scalar execution.
/// The tier must be usable — the equivalence suite skips tiers the host
/// cannot run instead of overriding to them. Not synchronized: set it only
/// from single-threaded test/bench setup code.
void SetKernelTierOverride(std::optional<KernelTier> tier);

/// Human-readable summary of the SIMD features this process detected at
/// runtime, e.g. "avx2+avx512f" or "baseline" — stamped into bench report
/// contexts so regressions are never compared across differently-capable
/// machines.
std::string CpuFeatureString();

}  // namespace wavebatch

#endif  // WAVEBATCH_UTIL_CPU_FEATURES_H_
