#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/check.h"

namespace wavebatch {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  WB_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  WB_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << CsvEscape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  PrintCsv(out);
  return static_cast<bool>(out);
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

}  // namespace wavebatch
