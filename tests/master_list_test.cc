#include "core/master_list.h"

#include "data/generators.h"
#include "gtest/gtest.h"
#include "strategy/wavelet_strategy.h"
#include "util/random.h"

namespace wavebatch {
namespace {

/// Random per-query sparse vectors with heavy cross-query key sharing.
/// total coefficients ≈ num_queries * nnz; sized by callers to land above
/// or below the master list's parallel-build threshold.
std::vector<SparseVec> RandomQueryVectors(size_t num_queries, size_t nnz,
                                          uint64_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<SparseVec> qs;
  qs.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    std::vector<SparseEntry> entries;
    for (uint64_t key : rng.SampleWithoutReplacement(domain, nnz)) {
      entries.push_back({key, rng.Gaussian()});
    }
    qs.push_back(SparseVec::FromUnsorted(entries));
  }
  return qs;
}

TEST(MasterListTest, FromQueryVectorsMergesByKey) {
  std::vector<SparseVec> qs = {
      SparseVec::FromUnsorted({{1, 1.0}, {5, 2.0}}),
      SparseVec::FromUnsorted({{5, 3.0}, {9, -1.0}}),
      SparseVec::FromUnsorted({{1, 0.5}, {5, 0.5}, {9, 0.5}}),
  };
  MasterList list = MasterList::FromQueryVectors(qs);
  EXPECT_EQ(list.num_queries(), 3u);
  EXPECT_EQ(list.size(), 3u);  // keys 1, 5, 9
  EXPECT_EQ(list.TotalQueryCoefficients(), 7u);
  EXPECT_EQ(list.MaxSharing(), 3u);

  EXPECT_EQ(list.entry(0).key, 1u);
  ASSERT_EQ(list.entry(0).uses.size(), 2u);
  EXPECT_EQ(list.entry(0).uses[0].first, 0u);
  EXPECT_DOUBLE_EQ(list.entry(0).uses[0].second, 1.0);
  EXPECT_EQ(list.entry(0).uses[1].first, 2u);

  EXPECT_EQ(list.entry(1).key, 5u);
  EXPECT_EQ(list.entry(1).uses.size(), 3u);
}

TEST(MasterListTest, EntriesSortedAndUsesAscending) {
  std::vector<SparseVec> qs = {
      SparseVec::FromUnsorted({{100, 1.0}, {2, 1.0}, {50, 1.0}}),
      SparseVec::FromUnsorted({{50, 1.0}, {2, 1.0}}),
  };
  MasterList list = MasterList::FromQueryVectors(qs);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_LT(list.entry(i - 1).key, list.entry(i).key);
  }
  for (size_t i = 0; i < list.size(); ++i) {
    const auto& uses = list.entry(i).uses;
    for (size_t j = 1; j < uses.size(); ++j) {
      EXPECT_LT(uses[j - 1].first, uses[j].first);
    }
  }
}

TEST(MasterListTest, PerQueryCoefficients) {
  std::vector<SparseVec> qs = {
      SparseVec::FromUnsorted({{1, 1.0}}),
      SparseVec::FromUnsorted({{1, 1.0}, {2, 1.0}, {3, 1.0}}),
  };
  MasterList list = MasterList::FromQueryVectors(qs);
  ASSERT_EQ(list.PerQueryCoefficients().size(), 2u);
  EXPECT_EQ(list.PerQueryCoefficients()[0], 1u);
  EXPECT_EQ(list.PerQueryCoefficients()[1], 3u);
}

TEST(MasterListTest, EmptyBatch) {
  MasterList list = MasterList::FromQueryVectors({});
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.num_queries(), 0u);
  EXPECT_EQ(list.MaxSharing(), 0u);
}

TEST(MasterListTest, BuildFromBatchSharesAcrossAdjacentRanges) {
  // Two adjacent ranges share boundary wavelets: the master list must be
  // strictly smaller than the sum of the parts.
  Schema schema = Schema::Uniform(2, 32);
  WaveletStrategy strategy(schema, WaveletKind::kHaar);
  QueryBatch batch(schema);
  batch.Add(RangeSumQuery::Count(Range::All(schema).Restrict(0, 0, 15)));
  batch.Add(RangeSumQuery::Count(Range::All(schema).Restrict(0, 16, 31)));
  Result<MasterList> list = MasterList::Build(batch, strategy);
  ASSERT_TRUE(list.ok()) << list.status();
  EXPECT_LT(list->size(), list->TotalQueryCoefficients());
  EXPECT_GE(list->MaxSharing(), 2u);
}

TEST(MasterListTest, CsrViewMatchesEntriesView) {
  // The flat CSR image and the pointer-based legacy view are two
  // materializations of the same build; they must agree entry for entry.
  std::vector<SparseVec> qs =
      RandomQueryVectors(/*num_queries=*/12, /*nnz=*/200, /*domain=*/1024, 3);
  MasterList list = MasterList::FromQueryVectors(qs);
  ASSERT_EQ(list.entries().size(), list.size());
  ASSERT_EQ(list.keys().size(), list.size());
  ASSERT_EQ(list.uses_offsets().size(), list.size() + 1);
  EXPECT_EQ(list.uses_offsets().front(), 0u);
  EXPECT_EQ(list.uses_offsets().back(), list.uses_query().size());
  ASSERT_EQ(list.uses_query().size(), list.uses_coeff().size());
  for (size_t e = 0; e < list.size(); ++e) {
    const MasterEntry& entry = list.entry(e);
    EXPECT_EQ(entry.key, list.keys()[e]);
    const uint64_t lo = list.uses_offsets()[e];
    const uint64_t hi = list.uses_offsets()[e + 1];
    ASSERT_EQ(entry.uses.size(), hi - lo);
    for (uint64_t r = lo; r < hi; ++r) {
      EXPECT_EQ(entry.uses[r - lo].first, list.uses_query()[r]);
      EXPECT_EQ(entry.uses[r - lo].second, list.uses_coeff()[r]);
    }
  }
}

TEST(MasterListTest, SerialAndParallelBuildsBitIdentical) {
  // Large enough to clear the parallel-build threshold (2^14 merged
  // coefficients): the two settings must produce byte-for-byte identical
  // CSR images — that is the whole determinism contract of the parallel
  // merge (fixed chunks, stable pairwise merges).
  std::vector<SparseVec> qs = RandomQueryVectors(
      /*num_queries=*/36, /*nnz=*/600, /*domain=*/8192, 11);
  MasterList serial =
      MasterList::FromQueryVectors(qs, BuildParallelism::kSerial);
  MasterList parallel =
      MasterList::FromQueryVectors(qs, BuildParallelism::kParallel);
  ASSERT_GE(serial.TotalQueryCoefficients(), 1u << 14);
  EXPECT_GE(serial.MaxSharing(), 2u);  // keys genuinely collide
  EXPECT_EQ(serial.keys(), parallel.keys());
  EXPECT_EQ(serial.uses_offsets(), parallel.uses_offsets());
  EXPECT_EQ(serial.uses_query(), parallel.uses_query());
  EXPECT_EQ(serial.uses_coeff(), parallel.uses_coeff());
  ASSERT_EQ(serial.entries().size(), parallel.entries().size());
  for (size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(serial.entry(e).key, parallel.entry(e).key);
    EXPECT_EQ(serial.entry(e).uses, parallel.entry(e).uses);
  }
}

TEST(MasterListTest, BuildPropagatesRewriteErrors) {
  // A prefix-sum strategy that does not support SUM monomials.
  Schema schema = Schema::Uniform(2, 8);
  QueryBatch batch(schema);
  batch.Add(RangeSumQuery::Sum(Range::All(schema), 0));
  // Use wavelet strategy with mismatched dims to trigger an error instead:
  WaveletStrategy other(Schema::Uniform(3, 8), WaveletKind::kHaar);
  Result<MasterList> list = MasterList::Build(batch, other);
  EXPECT_FALSE(list.ok());
}

}  // namespace
}  // namespace wavebatch
