#ifndef WAVEBATCH_CUBE_SCHEMA_H_
#define WAVEBATCH_CUBE_SCHEMA_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace wavebatch {

/// One attribute of a schema. The attribute's active domain is the integer
/// interval [0, size); `size` must be a power of two (the paper's setting:
/// d numeric attributes ranging from 0 to N-1 with N a power of two; the
/// dimensions may have different sizes).
struct Dimension {
  std::string name;
  uint32_t size = 0;
};

/// An ordered list of dimensions describing the domain Dom(F) over which
/// data frequency distributions and query vectors are indexed. Immutable
/// after construction; validated by Schema::Create.
class Schema {
 public:
  /// Validates and builds a schema. Fails if `dims` is empty, any size is
  /// not a power of two >= 2, names are empty/duplicated, or the total
  /// domain requires more than 62 bits (cells must fit packed in a uint64).
  static Result<Schema> Create(std::vector<Dimension> dims);

  /// Convenience for tests/examples: dimensions named "d0", "d1", ....
  static Schema Uniform(size_t num_dims, uint32_t size);

  size_t num_dims() const { return dims_.size(); }
  const Dimension& dim(size_t i) const { return dims_[i]; }
  const std::vector<Dimension>& dims() const { return dims_; }

  /// log2 of dimension i's size.
  uint32_t bits(size_t i) const { return bits_[i]; }
  /// Sum of all per-dimension bit widths (= log2 of cell_count()).
  uint32_t total_bits() const { return total_bits_; }

  /// Number of cells in the full domain (product of dimension sizes).
  uint64_t cell_count() const { return uint64_t{1} << total_bits_; }

  /// Index of the dimension named `name`, or an error.
  Result<size_t> DimIndex(const std::string& name) const;

  /// True iff `coords` has one in-domain coordinate per dimension.
  bool Contains(std::span<const uint32_t> coords) const;

  /// Packs per-dimension coordinates into a dense linear cell id
  /// (dimension 0 occupies the most significant bits). Checked.
  uint64_t Pack(std::span<const uint32_t> coords) const;

  /// Inverse of Pack.
  std::vector<uint32_t> Unpack(uint64_t cell) const;

  /// Structural equality (names and sizes).
  friend bool operator==(const Schema& a, const Schema& b) {
    if (a.dims_.size() != b.dims_.size()) return false;
    for (size_t i = 0; i < a.dims_.size(); ++i) {
      if (a.dims_[i].name != b.dims_[i].name ||
          a.dims_[i].size != b.dims_[i].size) {
        return false;
      }
    }
    return true;
  }

  /// Human-readable description, e.g. "lat:64 x lon:64 x time:32".
  std::string ToString() const;

 private:
  Schema() = default;

  std::vector<Dimension> dims_;
  std::vector<uint32_t> bits_;
  uint32_t total_bits_ = 0;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_CUBE_SCHEMA_H_
