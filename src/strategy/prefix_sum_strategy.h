#ifndef WAVEBATCH_STRATEGY_PREFIX_SUM_STRATEGY_H_
#define WAVEBATCH_STRATEGY_PREFIX_SUM_STRATEGY_H_

#include <vector>

#include "query/batch.h"
#include "strategy/linear_strategy.h"

namespace wavebatch {

/// The prefix-sum storage strategy of Ho et al. [8], generalized to
/// polynomial measures: for every supported monomial m_t the view holds the
/// d-dimensional prefix-sum cube
///     P_t[y] = Σ_{x ≤ y (componentwise)}  m_t(x) · Δ[x],
/// and a range-sum over R = Π[lo_i, hi_i] is the alternating sum of at most
/// 2^d corner values per monomial term (corners with any coordinate at
/// lo_i − 1 < 0 vanish). Queries are O(2^d) retrievals; updates are
/// O(N^d) worst case — the inverse trade-off of the wavelet strategy,
/// reproduced by bench_micro.
///
/// Keys are (monomial slot t) << schema.total_bits() | packed cell id.
class PrefixSumStrategy : public LinearStrategy {
 public:
  /// `monomials` lists the exponent vectors (one exponent per dimension)
  /// this view supports; queries using other monomials fail to rewrite.
  /// The constant monomial (all-zero exponents) supports COUNT.
  PrefixSumStrategy(Schema schema,
                    std::vector<std::vector<uint32_t>> monomials);

  /// Every distinct monomial appearing in the batch's polynomials.
  static std::vector<std::vector<uint32_t>> CollectMonomials(
      const QueryBatch& batch);

  Result<SparseVec> TransformQuery(const RangeSumQuery& query) const override;
  std::unique_ptr<CoefficientStore> BuildStore(
      const DenseCube& delta) const override;
  /// The O(N^d) worst case: every cell componentwise ≥ the tuple, per
  /// monomial slot.
  Result<SparseVec> TransformUpdate(const Tuple& tuple,
                                    double count) const override;
  std::string name() const override { return "prefix-sum"; }

  size_t num_monomials() const { return monomials_.size(); }

 protected:
  std::unique_ptr<CoefficientStore> MakeEmptyStore() const override;

 private:
  /// Slot of the monomial with these exponents, or error.
  Result<size_t> MonomialSlot(const std::vector<uint32_t>& exponents) const;

  static double EvalMonomial(const std::vector<uint32_t>& exponents,
                             const Tuple& t);

  std::vector<std::vector<uint32_t>> monomials_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STRATEGY_PREFIX_SUM_STRATEGY_H_
