#ifndef WAVEBATCH_STORAGE_FAULT_INJECTION_STORE_H_
#define WAVEBATCH_STORAGE_FAULT_INJECTION_STORE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "storage/coefficient_store.h"

namespace wavebatch {

/// Deterministic fault schedule for a FaultInjectionStore. All counts are
/// 1-based over *counted* fetches (Fetch and each key of FetchBatch, in
/// batch order); 0 disables a rule.
struct FaultInjectionOptions {
  /// Fail every Nth counted fetch. The counter keeps advancing when a fault
  /// fires, so an immediate retry of the same key succeeds — this models a
  /// transient (retryable) fault.
  uint64_t fail_every_n = 0;
  /// Fail exactly the Nth counted fetch, then self-heal. Models a one-shot
  /// transient fault at a known point in a progression.
  uint64_t fail_at_fetch = 0;
  /// Injected latency per counted call (scalar fetch or batch), applied on
  /// the calling thread before the read. Models slow media; useful for
  /// exercising timeout/retry behavior in benchmarks.
  std::chrono::microseconds latency{0};
};

/// Decorator that injects faults into another store's counted read path —
/// the test double behind the fault matrix (every backend × every fault
/// shape). Peek, Add, and the scan entry points pass through untouched:
/// faults only ever hit the paper's counted retrievals, which is exactly
/// the path the engine must survive.
///
/// Injected failures surface as Status::Unavailable, the code retry logic
/// treats as transient. Rules compose: a key failed via FailKey() stays
/// failed until Heal() (a permanent fault); the schedule-based rules in
/// FaultInjectionOptions are transient by construction. A faulted fetch
/// charges nothing (the wrapper only counts successes) and never reaches
/// the inner backend.
///
/// Thread-safe like any store: the fault state is guarded by a mutex, so
/// concurrent sessions see one global fetch ordinal (the schedule is
/// deterministic only under a single-threaded caller).
class FaultInjectionStore : public CoefficientStore {
 public:
  /// Owning wrap.
  FaultInjectionStore(std::unique_ptr<CoefficientStore> inner,
                      FaultInjectionOptions options = FaultInjectionOptions());

  /// Non-owning wrap: `inner` must outlive this store. Handy for injecting
  /// faults into a store another component still holds.
  FaultInjectionStore(CoefficientStore* inner,
                      FaultInjectionOptions options = FaultInjectionOptions());

  /// Makes every fetch of `key` fail (permanent fault) until Heal().
  void FailKey(uint64_t key);

  /// Clears all configured faults: failed keys, fail_every_n, and any
  /// pending fail_at_fetch. Latency is left in place (it is not a fault).
  void Heal();

  /// Counted fetches seen so far (successful or faulted).
  uint64_t fetch_count() const;

  /// Faults fired so far.
  uint64_t injected_failures() const;

  double Peek(uint64_t key) const override { return inner_->Peek(key); }
  void Add(uint64_t key, double delta) override { inner_->Add(key, delta); }
  uint64_t NumNonZero() const override { return inner_->NumNonZero(); }
  double SumAbs() const override { return inner_->SumAbs(); }
  void ForEachNonZero(
      const std::function<void(uint64_t, double)>& fn) const override {
    inner_->ForEachNonZero(fn);
  }
  std::string name() const override { return "faulty(" + inner_->name() + ")"; }

  /// Forwards the inner store's partition: a faulty sharded plane routes
  /// exactly like a healthy one (faults hit the counted path, not routing).
  const KeyRouter* router() const override { return inner_->router(); }

 protected:
  Result<double> DoFetch(uint64_t key, IoStats* io) const override;

  /// Evaluates the fault schedule per key in batch order; the first faulted
  /// key fails the whole batch (all-or-nothing, `out` unspecified) but the
  /// ordinals of the keys up to and including it are consumed — so a
  /// retried batch replays against fresh ordinals, and fail_every_n lets it
  /// through.
  Status DoFetchBatch(std::span<const uint64_t> keys, std::span<double> out,
                      IoStats* io) const override;

  /// Same schedule, hints forwarded to the inner backend on the clean path.
  Status DoFetchBatchRouted(std::span<const uint64_t> keys,
                            std::span<const uint32_t> shards,
                            std::span<double> out, IoStats* io) const override;

 private:
  /// Advances the fetch ordinal for `key` and returns the injected fault,
  /// if any fires. Caller must hold mu_.
  Status CheckOneLocked(uint64_t key) const;

  void InjectLatency() const;

  std::unique_ptr<CoefficientStore> owned_;
  CoefficientStore* inner_;

  mutable std::mutex mu_;
  mutable FaultInjectionOptions options_;
  mutable std::unordered_set<uint64_t> failed_keys_;
  mutable uint64_t fetch_count_ = 0;
  mutable uint64_t injected_failures_ = 0;

  /// Process-wide telemetry twin of injected_failures_, labeled by store
  /// name; bound in the constructor body (name() is virtual).
  telemetry::Counter* injected_faults_metric_;
};

}  // namespace wavebatch

#endif  // WAVEBATCH_STORAGE_FAULT_INJECTION_STORE_H_
