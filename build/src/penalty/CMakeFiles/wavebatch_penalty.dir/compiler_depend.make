# Empty compiler generated dependencies file for wavebatch_penalty.
# This may be replaced when dependencies are built.
