file(REMOVE_RECURSE
  "CMakeFiles/lazy_query_transform_test.dir/lazy_query_transform_test.cc.o"
  "CMakeFiles/lazy_query_transform_test.dir/lazy_query_transform_test.cc.o.d"
  "lazy_query_transform_test"
  "lazy_query_transform_test.pdb"
  "lazy_query_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_query_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
