file(REMOVE_RECURSE
  "../bench/bench_ablation_orders"
  "../bench/bench_ablation_orders.pdb"
  "CMakeFiles/bench_ablation_orders.dir/bench_ablation_orders.cc.o"
  "CMakeFiles/bench_ablation_orders.dir/bench_ablation_orders.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
