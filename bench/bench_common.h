#ifndef WAVEBATCH_BENCH_BENCH_COMMON_H_
#define WAVEBATCH_BENCH_BENCH_COMMON_H_

// Shared plumbing for the experiment harnesses in bench/: a tiny
// --key=value flag parser and the paper-shaped default workload (synthetic
// temperature cube + 512-range partition batch).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/exact.h"
#include "core/master_list.h"
#include "data/generators.h"
#include "data/workloads.h"
#include "strategy/wavelet_strategy.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "util/stopwatch.h"

namespace wavebatch::bench {

/// Parses argv of the form --key=value into a map; prints usage and exits
/// on --help. Unrecognized flags are fatal (catches typos in sweeps).
class Flags {
 public:
  Flags(int argc, char** argv, const std::string& usage) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        std::cerr << usage << std::endl;
        std::exit(0);
      }
      if (arg.rfind("--", 0) != 0) {
        std::cerr << "unrecognized argument: " << arg << "\n" << usage
                  << std::endl;
        std::exit(2);
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";  // bare flag = true
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  int64_t Int(const std::string& key, int64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::strtoll(it->second.c_str(),
                                                    nullptr, 10);
  }
  double Double(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::strtod(it->second.c_str(),
                                                   nullptr);
  }
  std::string Str(const std::string& key, const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  bool Bool(const std::string& key, bool def) const {
    auto it = values_.find(key);
    if (it == values_.end()) return def;
    return it->second != "0" && it->second != "false";
  }

 private:
  std::map<std::string, std::string> values_;
};

/// The paper-shaped experiment: temperature cube, a lat×lon grid partition
/// summing temperature per cell, the Db4 wavelet view, and exact reference
/// results.
struct Experiment {
  TemperatureDatasetOptions data_options;
  DenseCube cube;
  PartitionWorkload workload;
  WaveletStrategy strategy;
  std::unique_ptr<CoefficientStore> store;
  MasterList list;
  std::vector<double> exact;

  Experiment(TemperatureDatasetOptions options, std::vector<size_t> parts,
             uint64_t workload_seed, WaveletKind kind,
             uint32_t min_width = 2)
      : data_options(options),
        cube(MakeTemperatureCube(options)),
        // Binned Kelvin temperatures: bin 0 is ~200 K at 3.75 K per bin,
        // so the summed physical measure is 53.33 + x_temp (in bins).
        workload(MakePartitionWorkload(cube.schema(), parts,
                                       CellAggregate::kSum, kTemp,
                                       workload_seed, /*random_cuts=*/true,
                                       min_width,
                                       /*measure_offset=*/53.33)),
        strategy(cube.schema(), kind) {
    store = strategy.BuildStore(cube);
    Result<MasterList> built = MasterList::Build(workload.batch, strategy);
    if (!built.ok()) {
      std::cerr << "master list build failed: " << built.status()
                << std::endl;
      std::exit(1);
    }
    list = std::move(built).value();
    // Reference results: exact shared evaluation (itself validated against
    // brute force in the test suite). I/O is counted per caller-provided
    // sink now, so the warm-up fetches here don't pollute later
    // measurements — there is no store-level counter to reset.
    ExactBatchResult res = EvaluateShared(list, *store);
    exact = std::move(res.results);
  }
};

/// Accumulates benchmark records and writes them as a JSON array — the
/// machine-readable companion to the CSV output. Schema per record:
/// {"name": ..., "params": {...}, "median_ns": ..., "retrievals": ...}.
class BenchJson {
 public:
  void Add(const std::string& name,
           const std::map<std::string, std::string>& params,
           double median_ns, uint64_t retrievals) {
    records_.push_back({name, params, median_ns, retrievals});
  }

  bool Write(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("[\n", f);
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "  {\"name\": \"%s\", \"params\": {",
                   Escaped(r.name).c_str());
      size_t k = 0;
      for (const auto& [key, value] : r.params) {
        std::fprintf(f, "%s\"%s\": \"%s\"", k++ ? ", " : "",
                     Escaped(key).c_str(), Escaped(value).c_str());
      }
      std::fprintf(f, "}, \"median_ns\": %.3f, \"retrievals\": %llu}%s\n",
                   r.median_ns,
                   static_cast<unsigned long long>(r.retrievals),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    std::cerr << "wrote " << path << " (" << records_.size()
              << " records)" << std::endl;
    return true;
  }

 private:
  struct Record {
    std::string name;
    std::map<std::string, std::string> params;
    double median_ns;
    uint64_t retrievals;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<Record> records_;
};

/// Default options matching the paper's 5-dim schema at a scale a laptop
/// handles densely; flags scale it up or down.
inline TemperatureDatasetOptions DataOptionsFromFlags(const Flags& flags) {
  TemperatureDatasetOptions options;
  options.lat_size = static_cast<uint32_t>(flags.Int("lat", 128));
  options.lon_size = static_cast<uint32_t>(flags.Int("lon", 64));
  options.alt_size = static_cast<uint32_t>(flags.Int("alt", 8));
  options.time_size = static_cast<uint32_t>(flags.Int("time", 32));
  options.temp_size = static_cast<uint32_t>(flags.Int("temp", 32));
  options.num_records =
      static_cast<uint64_t>(flags.Int("records", 15700000));
  options.seed = static_cast<uint64_t>(flags.Int("seed", 42));
  return options;
}

/// The paper's 512-range workload shape: a random grid over the four
/// physical dimensions (the temperature measure stays unrestricted);
/// default 32 (lat) x 16 (lon) = 512 cells.
inline std::vector<size_t> PartsFromFlags(const Flags& flags) {
  return {static_cast<size_t>(flags.Int("lat_parts", 32)),
          static_cast<size_t>(flags.Int("lon_parts", 16)),
          static_cast<size_t>(flags.Int("alt_parts", 1)),
          static_cast<size_t>(flags.Int("time_parts", 1)),
          static_cast<size_t>(flags.Int("temp_parts", 1))};
}

inline const std::string kCommonFlagsHelp =
    "  --lat= --lon= --alt= --time= --temp=   domain sizes (powers of 2)\n"
    "  --records=N   synthetic observations (default 2000000)\n"
    "  --seed=N      data seed (default 42)\n"
    "  --lat_parts= --lon_parts= --alt_parts= --time_parts=\n"
    "                partition grid (default 32x16 = 512 ranges)\n"
    "  --csv=path    also write the series as CSV\n"
    "  --metrics_out=path\n"
    "                dump the telemetry registry (store/engine counters,\n"
    "                latency histograms) as Prometheus text at exit\n";

/// Writes the process telemetry registry as Prometheus text to
/// --metrics_out=path, if the flag was given. Call at the end of a run so
/// the counters cover the whole experiment. Returns false only on an I/O
/// error for a requested path.
inline bool WriteMetricsOut(const Flags& flags) {
  const std::string path = flags.Str("metrics_out", "");
  if (path.empty()) return true;
  const std::string text = telemetry::ExportPrometheus();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "failed to open --metrics_out=" << path << std::endl;
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (ok) {
    std::cerr << "wrote " << path << " ("
              << telemetry::MetricsRegistry::Default().NumMetrics()
              << " metric series)" << std::endl;
  }
  return ok;
}

}  // namespace wavebatch::bench

#endif  // WAVEBATCH_BENCH_BENCH_COMMON_H_
