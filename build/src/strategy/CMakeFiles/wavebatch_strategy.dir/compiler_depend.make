# Empty compiler generated dependencies file for wavebatch_strategy.
# This may be replaced when dependencies are built.
